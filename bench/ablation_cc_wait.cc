// Ablation — wait-on-dirty concurrency control vs the paper's blind reject.
//
// Section 4.7's CC "blindly reject[s]" any access to a dirty tuple, which
// makes hot rows abort-storm: every Payment in a batch updates the same
// warehouse tuple, so only the first batchmate commits and the rest burn a
// retry round trip. The wait-on-dirty extension parks the conflicting index
// op until the uncommitted writer resolves (bounded by a timeout that also
// breaks cross-transaction wait cycles). This bench sweeps the wait budget
// on TPC-C Payment — the paper's most contended transaction — and on the
// conflict-free YCSB-C as a no-regression control.
#include "bench/bench_util.h"
#include "bench/report.h"
#include "workload/tpcc.h"
#include "workload/ycsb.h"

namespace bionicdb {
namespace {

bench::BenchReport* g_report = nullptr;

struct Outcome {
  double ktps = 0;
  double retry_rate = 0;
  uint64_t timeouts = 0;
};

Outcome RunPayment(const bench::BenchArgs& args, uint32_t wait_cycles) {
  core::EngineOptions opts;
  opts.n_workers = 4;
  opts.softcore.max_contexts = 4;
  opts.coproc.hash.dirty_wait_cycles = wait_cycles;
  core::BionicDb engine(opts);
  workload::TpccOptions topts;
  if (args.quick) {
    topts.districts_per_warehouse = 4;
    topts.customers_per_district = 100;
    topts.items = 2'000;
  }
  topts.remote_payment_fraction = 0.15;
  workload::Tpcc tpcc(&engine, topts);
  if (!tpcc.Setup().ok()) return {};
  Rng rng(args.seed);
  const uint64_t txns = args.quick ? 100 : 600;
  host::TxnList list;
  for (uint32_t w = 0; w < 4; ++w) {
    for (uint64_t i = 0; i < txns; ++i) {
      list.emplace_back(w, tpcc.MakePayment(&rng, w));
    }
  }
  auto r = host::RunToCompletion(&engine, list);
  g_report->AddEngineRun("tpcc_payment/wait=" + std::to_string(wait_cycles),
                         &engine, r);
  Outcome out;
  out.ktps = r.tps / 1e3;
  out.retry_rate = r.committed ? double(r.retries) / double(r.committed) : 0;
  for (uint32_t w = 0; w < 4; ++w) {
    out.timeouts += engine.worker(w)
                        .coprocessor()
                        .hash_pipeline()
                        .counters()
                        .Get("dirty_wait_timeouts");
  }
  return out;
}

double RunYcsb(const bench::BenchArgs& args, uint32_t wait_cycles) {
  core::EngineOptions opts;
  opts.n_workers = 4;
  opts.coproc.hash.dirty_wait_cycles = wait_cycles;
  core::BionicDb engine(opts);
  workload::YcsbOptions yopts;
  yopts.records_per_partition = args.quick ? 5'000 : 20'000;
  yopts.payload_len = 64;
  workload::Ycsb ycsb(&engine, yopts);
  if (!ycsb.Setup().ok()) return 0;
  Rng rng(args.seed);
  const uint64_t txns = args.quick ? 200 : 1'000;
  host::TxnList list;
  for (uint32_t w = 0; w < 4; ++w) {
    for (uint64_t i = 0; i < txns; ++i) {
      list.emplace_back(w, ycsb.MakeTxn(&rng, w));
    }
  }
  auto r = host::RunToCompletion(&engine, list);
  g_report->AddEngineRun("ycsb_c/wait=" + std::to_string(wait_cycles),
                         &engine, r);
  return r.tps;
}

}  // namespace
}  // namespace bionicdb

int main(int argc, char** argv) {
  using namespace bionicdb;
  auto args = bench::BenchArgs::Parse(argc, argv);
  bench::BenchReport report("ablation_cc_wait");
  g_report = &report;
  bench::PrintHeader("Ablation",
                     "Wait-on-dirty CC vs blind reject (section 4.7)");
  std::printf("\nTPC-C Payment (hot warehouse row):\n");
  TablePrinter table({"dirty wait (cycles)", "throughput (kTps)",
                      "retry rate", "wait timeouts"});
  for (uint32_t wait : {0u, 256u, 1024u, 4096u, 16384u}) {
    auto o = RunPayment(args, wait);
    table.AddRow({wait == 0 ? "0 (paper)" : std::to_string(wait),
                  TablePrinter::Num(o.ktps, 1),
                  TablePrinter::Num(o.retry_rate, 2),
                  std::to_string(o.timeouts)});
  }
  table.Print();

  std::printf("\nYCSB-C control (conflict-free, must not regress):\n");
  TablePrinter control({"dirty wait (cycles)", "throughput (kTps)"});
  for (uint32_t wait : {0u, 4096u}) {
    control.AddRow({wait == 0 ? "0 (paper)" : std::to_string(wait),
                    bench::Ktps(RunYcsb(args, wait))});
  }
  control.Print();
  report.WriteFile();
  return 0;
}
