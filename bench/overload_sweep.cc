// Extension — open-loop overload sweep: offered load vs latency SLOs.
//
// Production OLTP systems are provisioned by the question this figure
// answers: as offered load approaches and passes the service capacity,
// where do p50/p99/p999 leave the SLO band, and how much goodput does the
// system hold past saturation? The closed-loop harnesses cannot see this
// knee (a slow server throttles its own clients); here a seeded open-loop
// Poisson client offers transactions on its own timeline, a bounded
// admission queue sheds what the engine cannot absorb, and latency is
// measured arrival-to-commit including queue wait.
//
// The harness first measures closed-loop capacity, then sweeps offered
// load across it (0.25x .. 1.5x). A built-in knee check fails the binary
// if the report does not show the signature of saturation: goodput
// plateauing while p99 rises sharply. A short bursty (MMPP) leg shows the
// same offered load arriving in bursts costing materially more tail
// latency. Results are bit-identical for a fixed seed across the
// simulator's three modes (--mode=serial|event|parallel).
#include <cmath>
#include <vector>

#include "bench/bench_util.h"
#include "bench/report.h"
#include "workload/ycsb.h"

namespace bionicdb {
namespace {

using bench::BenchArgs;
using host::ArrivalOptions;

bench::BenchReport* g_report = nullptr;

core::EngineOptions EngineOpts(const BenchArgs& args) {
  core::EngineOptions opts;
  opts.n_workers = 4;
  args.ApplyMode(&opts);
  return opts;
}

workload::YcsbOptions Workload(const BenchArgs& args) {
  workload::YcsbOptions yopts;
  yopts.records_per_partition = args.quick ? 5'000 : 20'000;
  yopts.payload_len = args.quick ? 64 : 1024;
  return yopts;
}

/// Service capacity estimate: committed rate under a saturating closed
/// loop. Deterministic, so every mode derives the same sweep points.
double MeasureCapacityTps(const BenchArgs& args) {
  core::EngineOptions opts = EngineOpts(args);
  core::BionicDb engine(opts);
  workload::Ycsb ycsb(&engine, Workload(args));
  if (!ycsb.Setup().ok()) return 0;
  host::ClosedLoopOptions copts;
  copts.inflight_per_worker = 16;
  copts.txns_per_worker = args.smoke ? 100 : args.quick ? 200 : 500;
  Rng rng(args.seed);
  return host::RunClosedLoop(&engine, ycsb.Factory(&rng), copts).tps;
}

struct SweepPoint {
  double load_factor = 0;
  host::OpenLoopResult result;
};

SweepPoint RunPoint(const BenchArgs& args, double capacity_tps,
                    double load_factor, ArrivalOptions::Process process) {
  core::EngineOptions opts = EngineOpts(args);
  core::BionicDb engine(opts);
  workload::Ycsb ycsb(&engine, Workload(args));
  SweepPoint point;
  point.load_factor = load_factor;
  if (!ycsb.Setup().ok()) return point;

  host::OpenLoopOptions oopts;
  oopts.arrival.process = process;
  oopts.arrival.offered_tps = load_factor * capacity_tps;
  oopts.arrival.seed = args.seed;
  oopts.total_txns = args.smoke ? 400 : args.quick ? 1'000 : 4'000;
  oopts.admission_queue_depth = 16;
  oopts.inflight_per_worker = 8;
  Rng rng(args.seed);
  point.result = host::RunOpenLoop(&engine, ycsb.Factory(&rng), oopts);

  char label[96];
  std::snprintf(label, sizeof label, "ycsb_c/%s/offered=%.2fx",
                process == ArrivalOptions::Process::kPoisson ? "poisson"
                                                             : "bursty",
                load_factor);
  g_report->AddEngineRun(label, &engine, point.result);
  return point;
}

void PrintRow(TablePrinter* table, const SweepPoint& p, double us_per_cycle) {
  const host::OpenLoopResult& r = p.result;
  table->AddRow(
      {TablePrinter::Num(p.load_factor, 2), bench::Ktps(r.offered_tps),
       bench::Ktps(r.goodput_tps),
       TablePrinter::Num(r.latency_cycles.Quantile(0.5) * us_per_cycle, 1),
       TablePrinter::Num(r.latency_cycles.Quantile(0.99) * us_per_cycle, 1),
       TablePrinter::Num(r.latency_cycles.Quantile(0.999) * us_per_cycle, 1),
       std::to_string(r.shed), std::to_string(r.retries)});
}

/// The saturation-knee signature the sweep must show (deterministic, so
/// this is a regression gate, not a flaky assertion): past capacity the
/// system sheds load and keeps goodput near its plateau while p99 climbs
/// steeply; far below capacity nothing is shed.
bool CheckKnee(const std::vector<SweepPoint>& sweep) {
  const SweepPoint& lightest = sweep.front();
  const SweepPoint& heaviest = sweep.back();
  bool ok = true;
  if (lightest.result.shed != 0) {
    std::printf("KNEE CHECK FAIL: shed %llu transactions at %.2fx load\n",
                (unsigned long long)lightest.result.shed,
                lightest.load_factor);
    ok = false;
  }
  if (heaviest.result.shed == 0) {
    std::printf("KNEE CHECK FAIL: no load shedding at %.2fx load\n",
                heaviest.load_factor);
    ok = false;
  }
  const double p99_light = lightest.result.latency_cycles.Quantile(0.99);
  const double p99_heavy = heaviest.result.latency_cycles.Quantile(0.99);
  if (!(p99_heavy >= 2.0 * p99_light)) {
    std::printf("KNEE CHECK FAIL: p99 %.0f at %.2fx vs %.0f at %.2fx — no "
                "latency knee\n",
                p99_heavy, heaviest.load_factor, p99_light,
                lightest.load_factor);
    ok = false;
  }
  // Goodput plateaus: offered grows past capacity but goodput stays within
  // 25% of the best point's (it cannot keep scaling with offered load).
  double best_goodput = 0;
  for (const SweepPoint& p : sweep) {
    best_goodput = std::max(best_goodput, p.result.goodput_tps);
  }
  if (!(heaviest.result.goodput_tps >= 0.75 * best_goodput &&
        heaviest.result.goodput_tps <
            0.95 * heaviest.result.offered_tps)) {
    std::printf("KNEE CHECK FAIL: goodput %.0f at %.2fx (best %.0f, "
                "offered %.0f) — no plateau\n",
                heaviest.result.goodput_tps, heaviest.load_factor,
                best_goodput, heaviest.result.offered_tps);
    ok = false;
  }
  return ok;
}

bool Sweep(const BenchArgs& args) {
  bench::PrintHeader("Overload sweep",
                     "YCSB-C open loop, offered load vs latency SLOs");
  const double capacity = MeasureCapacityTps(args);
  const double us_per_cycle = 1.0 / EngineOpts(args).timing.clock_mhz;
  std::printf("(closed-loop capacity estimate: %s kTps; mode: %s)\n",
              bench::Ktps(capacity).c_str(), args.ModeName());

  std::vector<double> points;
  if (args.smoke) {
    points = {0.5, 1.0, 1.5};
  } else {
    points = {0.25, 0.5, 0.75, 0.9, 1.0, 1.1, 1.25, 1.5};
  }

  TablePrinter table({"offered/capacity", "offered kTps", "goodput kTps",
                      "p50 (us)", "p99 (us)", "p999 (us)", "shed",
                      "retries"});
  std::vector<SweepPoint> sweep;
  for (double x : points) {
    sweep.push_back(
        RunPoint(args, capacity, x, ArrivalOptions::Process::kPoisson));
    PrintRow(&table, sweep.back(), us_per_cycle);
  }
  table.Print();

  // Bursty leg: same long-run offered load, arriving in bursts.
  bench::PrintHeader("Overload sweep",
                     "bursty (MMPP) arrivals at the same offered load");
  TablePrinter btable({"offered/capacity", "offered kTps", "goodput kTps",
                       "p50 (us)", "p99 (us)", "p999 (us)", "shed",
                       "retries"});
  std::vector<double> bursty_points =
      args.smoke ? std::vector<double>{0.9}
                 : std::vector<double>{0.5, 0.75, 0.9};
  for (double x : bursty_points) {
    SweepPoint p =
        RunPoint(args, capacity, x, ArrivalOptions::Process::kBursty);
    PrintRow(&btable, p, us_per_cycle);
  }
  btable.Print();

  return CheckKnee(sweep);
}

}  // namespace
}  // namespace bionicdb

int main(int argc, char** argv) {
  auto args = bionicdb::bench::BenchArgs::Parse(argc, argv);
  bionicdb::bench::BenchReport report("overload_sweep");
  bionicdb::g_report = &report;
  const bool knee_ok = bionicdb::Sweep(args);
  report.WriteFile();
  if (!knee_ok) {
    std::fprintf(stderr, "overload_sweep: saturation-knee check failed\n");
    return 1;
  }
  return 0;
}
