// Batched level-wise index traversal — intra- vs inter-operation
// pipelining ablation (DESIGN.md section 17).
//
// The baseline coprocessor pipelines WITHIN an operation: each probe's
// key fetch / bucket read / node walk overlap with other in-flight
// probes, but every DRAM access pays the full closed-row latency. The
// batched mode pipelines ACROSS operations (the BonsaiKV argument):
// probes are collected, sorted, and walked level by level, so same-page
// accesses coalesce into DRAM row hits and each unique tower is fetched
// once per batch.
//
// Legs, all self-enforced (the simulator is deterministic, so the
// crossovers are stable facts about the model, not flaky thresholds):
//  * dense point probes (UCSB batch-get shape, skiplist): batched must
//    win by >= 1.5x index-ops/s at the largest batch size, swept over
//    batch_size x mode;
//  * long range scans (widened YCSB-E, skiplist): batched must win the
//    longest-scan leg, swept over scan_len x mode — the scanner's
//    next-hop row hits dominate;
//  * batch_size=1 closed-loop tail latency: per-op must win (batching a
//    single probe only adds collector and phase-barrier overhead);
//  * three-simulator-mode determinism: a batched run's engine stats tree
//    must be byte-identical across serial, event-driven and parallel.
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/report.h"
#include "index/db_op.h"
#include "workload/kv.h"
#include "workload/ycsb.h"

namespace bionicdb {
namespace {

using bench::BenchArgs;

bench::BenchReport* g_report = nullptr;
int g_failures = 0;

void Check(bool ok, const std::string& what) {
  if (!ok) {
    std::fprintf(stderr, "CHECK FAILED: %s\n", what.c_str());
    ++g_failures;
  }
}

/// Aggregates the per-pipeline batch counters
/// (workers/<w>/coproc/{hash,skiplist}/batch/*) into the run-level
/// run/index/batch/* block the report validator checks.
void RecordBatchCounters(StatsRegistry* run, core::BionicDb* engine) {
  StatsRegistry reg;
  engine->CollectStats(&reg);
  auto sum_suffix = [&reg](const char* suffix) {
    const std::string suf = std::string("/batch/") + suffix;
    uint64_t sum = 0;
    for (const auto& [key, value] : reg.counters()) {
      if (key.size() > suf.size() &&
          key.compare(key.size() - suf.size(), suf.size(), suf) == 0) {
        sum += value;
      }
    }
    return sum;
  };
  StatsScope scope(run, "run/index/batch");
  scope.SetCounter("batches_flushed", sum_suffix("batches_flushed"));
  scope.SetCounter("burst_total_accesses", sum_suffix("burst_total_accesses"));
  scope.SetCounter("burst_coalesced_accesses",
                   sum_suffix("burst_coalesced_accesses"));
  Summary probes;
  const std::string suf = "/batch/probes_per_batch";
  for (const auto& [key, s] : reg.summaries()) {
    if (key.size() > suf.size() &&
        key.compare(key.size() - suf.size(), suf.size(), suf) == 0) {
      probes.MergeFrom(s);
    }
  }
  scope.SetGauge("probes_per_batch_p50", probes.Quantile(0.5));
}

core::EngineOptions MakeOpts(const BenchArgs& args, bool batched,
                             uint32_t batch_size) {
  core::EngineOptions opts;
  opts.n_workers = 4;
  args.ApplyMode(&opts);
  opts.coproc.traversal = batched ? index::TraversalMode::kBatched
                                  : index::TraversalMode::kPerOp;
  opts.coproc.batch_size = batch_size;
  return opts;
}

// ---------------------------------------------------------------------------
// Dense point probes (skiplist, UCSB batch-get shape).
//
// Both modes get the same 16-entry probe pool (the shared hardware
// budget, not part of the ablation) and an identical workload: every
// transaction bulk-searches 60 SEQUENTIAL preloaded keys from a random
// window. Per-op traversal walks a full tower path per probe — ~log(n)
// dependent closed-row DRAM reads each. The batched walk sorts the
// probes, descends level by level, and fetches each tower once per
// batch, so the shared path prefix of 16 adjacent keys is paid once and
// the sorted bottom-level hops coalesce into DRAM row hits.

double RunDenseProbe(const BenchArgs& args, bool batched,
                     uint32_t batch_size, const std::string& label) {
  core::EngineOptions opts = MakeOpts(args, batched, batch_size);
  // The paper's hardware budget: a 16-entry probe pool, which is also the
  // regime where the index pipeline (not the softcore) is the bottleneck
  // and the traversal strategy is what's being measured.
  opts.coproc.max_inflight = 16;
  core::BionicDb engine(opts);
  workload::KvOptions kopts;
  kopts.index = db::IndexKind::kSkiplist;
  kopts.preload_per_partition = args.smoke ? 2'000 : (args.quick ? 4'000 : 20'000);
  kopts.dense = true;
  kopts.batch_framing = true;  // per-op ignores the framing; same program
  workload::KvBench kv(&engine, kopts);
  if (!kv.Setup().ok()) {
    Check(false, "kv setup: " + label);
    return 0;
  }
  Rng rng(args.seed);
  const uint64_t txns = args.smoke ? 20 : (args.quick ? 50 : 200);
  host::TxnList list;
  for (uint32_t w = 0; w < opts.n_workers; ++w) {
    for (uint64_t i = 0; i < txns; ++i) {
      list.emplace_back(w, kv.MakeSearchTxn(&rng, w));
    }
  }
  auto r = host::RunToCompletion(&engine, list);
  Check(r.committed == r.submitted, "all committed: " + label);
  StatsRegistry& run = g_report->AddEngineRun(label, &engine, r);
  if (batched) RecordBatchCounters(&run, &engine);
  return r.tps * kopts.ops_per_txn;
}

void DensePointLeg(const BenchArgs& args) {
  bench::PrintHeader("batch_traversal A",
                     "Dense point probes (skiplist): index ops/s vs batch size");
  std::vector<uint32_t> batch_sizes =
      args.smoke ? std::vector<uint32_t>{1, 16}
                 : std::vector<uint32_t>{1, 4, 8, 16};
  if (args.batch != 0) batch_sizes = {args.batch};
  // batch_size is a no-op for the per-op pipeline, so one baseline run
  // serves the whole sweep.
  const double perop = RunDenseProbe(args, false, 8, "point/perop");
  TablePrinter table({"batch", "per-op (Mops)", "batched (Mops)", "ratio"});
  double at_batch1 = 0, at_max_batch = 0;
  for (uint32_t b : batch_sizes) {
    const double ops = RunDenseProbe(
        args, true, b, "point/batched/batch=" + std::to_string(b));
    if (b == 1) at_batch1 = ops;
    at_max_batch = ops;  // sizes ascend; last one is the largest
    table.AddRow({std::to_string(b), bench::Mops(perop), bench::Mops(ops),
                  TablePrinter::Num(perop > 0 ? ops / perop : 0, 2)});
  }
  table.Print();
  const double ratio = perop > 0 ? at_max_batch / perop : 0;
  std::printf("dense-probe speedup at batch=%u: %.2fx (floor 1.50x)\n",
              batch_sizes.back(), ratio);
  Check(ratio >= 1.5, "batched wins dense point probes by >=1.5x");
  // The curve is not monotone in batch depth — mid sizes can win by
  // overlapping several smaller batches in the pool — but real batching
  // must always beat degenerate batches of one.
  if (at_batch1 > 0 && batch_sizes.size() > 1) {
    Check(at_max_batch > at_batch1,
          "inter-op pipelining beats batch=1 collection overhead");
  }
}

// ---------------------------------------------------------------------------
// Long range scans (skiplist, widened YCSB-E).
//
// Scan lengths are drawn per transaction from [scan_len/2, scan_len]
// through the Scan op's scan_reg override. The scanner walks the
// bottom-level list serially, so its hop latency bounds throughput;
// bulk-loaded sequential keys make consecutive tuples address-adjacent
// and the batched scanner's next hop a DRAM row hit.

double RunScan(const BenchArgs& args, bool batched, uint32_t scan_len,
               const std::string& label) {
  core::EngineOptions opts = MakeOpts(args, batched, args.batch ? args.batch : 8);
  opts.coproc.max_inflight = 16;
  core::BionicDb engine(opts);
  workload::YcsbOptions yopts;
  yopts.mode = workload::YcsbOptions::Mode::kScanOnly;
  yopts.records_per_partition = args.smoke ? 2'000 : (args.quick ? 4'000 : 20'000);
  yopts.payload_len = 64;
  yopts.scan_len = scan_len;
  yopts.scan_len_min = scan_len / 2 > 0 ? scan_len / 2 : 1;
  workload::Ycsb ycsb(&engine, yopts);
  if (!ycsb.Setup().ok()) {
    Check(false, "ycsb setup: " + label);
    return 0;
  }
  Rng rng(args.seed);
  const uint64_t txns = args.smoke ? 40 : (args.quick ? 80 : 300);
  host::TxnList list;
  for (uint32_t w = 0; w < opts.n_workers; ++w) {
    for (uint64_t i = 0; i < txns; ++i) {
      list.emplace_back(w, ycsb.MakeTxn(&rng, w));
    }
  }
  auto r = host::RunToCompletion(&engine, list);
  Check(r.committed == r.submitted, "all committed: " + label);
  StatsRegistry& run = g_report->AddEngineRun(label, &engine, r);
  if (batched) RecordBatchCounters(&run, &engine);
  return r.tps;
}

void ScanLeg(const BenchArgs& args) {
  bench::PrintHeader("batch_traversal B",
                     "Range scans (skiplist): throughput vs scan length");
  std::vector<uint32_t> scan_lens = args.smoke
                                        ? std::vector<uint32_t>{8, 64}
                                        : std::vector<uint32_t>{8, 32, 128};
  if (args.scan_len != 0) scan_lens = {args.scan_len};
  TablePrinter table({"scan len", "per-op (kTps)", "batched (kTps)", "ratio"});
  double perop_long = 0, batched_long = 0;
  for (uint32_t len : scan_lens) {
    const std::string suffix = "/len=" + std::to_string(len);
    const double perop = RunScan(args, false, len, "scan/perop" + suffix);
    const double batched =
        RunScan(args, true, len, "scan/batched" + suffix);
    perop_long = perop;      // lengths ascend; keep the longest
    batched_long = batched;
    table.AddRow({std::to_string(len), bench::Ktps(perop),
                  bench::Ktps(batched),
                  TablePrinter::Num(perop > 0 ? batched / perop : 0, 2)});
  }
  table.Print();
  const double ratio = perop_long > 0 ? batched_long / perop_long : 0;
  std::printf("long-scan speedup at len=%u: %.2fx (floor 1.20x)\n",
              scan_lens.back(), ratio);
  Check(ratio >= 1.2, "batched wins the longest-scan leg by >=1.2x");
}

// ---------------------------------------------------------------------------
// batch_size=1 closed-loop tail latency: collecting a batch of one buys
// nothing and costs admission + phase-barrier cycles, so per-op traversal
// must hold the p99 edge. One client per worker isolates per-probe
// latency from queueing.

void TailLatencyLeg(const BenchArgs& args) {
  bench::PrintHeader("batch_traversal C",
                     "batch=1 closed-loop latency: per-op must win the tail");
  double p99[2] = {0, 0};
  for (int batched = 0; batched < 2; ++batched) {
    core::EngineOptions opts = MakeOpts(args, batched != 0, 1);
    core::BionicDb engine(opts);
    workload::YcsbOptions yopts;
    yopts.mode = workload::YcsbOptions::Mode::kBatchGet;
    yopts.records_per_partition = args.quick ? 2'000 : 20'000;
    yopts.payload_len = 64;
    workload::Ycsb ycsb(&engine, yopts);
    if (!ycsb.Setup().ok()) {
      Check(false, "ycsb setup: latency leg");
      return;
    }
    Rng rng(args.seed);
    host::ClosedLoopOptions copts;
    copts.inflight_per_worker = 1;
    copts.txns_per_worker = args.quick ? 100 : 400;
    auto factory = ycsb.Factory(&rng);
    auto r = host::RunClosedLoop(&engine, factory, copts);
    p99[batched] = r.latency_cycles.Quantile(0.99);
    g_report->AddEngineRun(
        std::string("latency/batch=1/") + (batched != 0 ? "batched" : "perop"),
        &engine, r);
  }
  std::printf("p99 latency (cycles): per-op %.0f, batched %.0f\n", p99[0],
              p99[1]);
  Check(p99[0] <= p99[1], "per-op wins batch=1 tail latency");
}

// ---------------------------------------------------------------------------
// Determinism: one batched update-mix configuration, all three simulator
// modes, byte-identical engine stats trees (the batch units are part of
// the determinism envelope like every other pipeline).

void ModeIdentityLeg(const BenchArgs& args) {
  bench::PrintHeader("batch_traversal D",
                     "Batched runs across serial/event/parallel simulators");
  struct Outcome {
    host::RunResult result;
    std::string stats_json;
    uint64_t final_now = 0;
  };
  auto run_mode = [&args](BenchArgs::SimMode mode, bool record) {
    core::EngineOptions opts;
    opts.n_workers = 4;
    opts.coproc.traversal = index::TraversalMode::kBatched;
    opts.coproc.batch_size = args.batch ? args.batch : 8;
    switch (mode) {
      case BenchArgs::SimMode::kSerial:
        break;
      case BenchArgs::SimMode::kEventDriven:
        opts.timing.event_driven = true;
        break;
      case BenchArgs::SimMode::kParallel:
        opts.timing.parallel_hosts = 4;
        break;
    }
    core::BionicDb engine(opts);
    workload::YcsbOptions yopts;
    yopts.mode = workload::YcsbOptions::Mode::kBatchPut;
    yopts.records_per_partition = args.quick ? 2'000 : 10'000;
    yopts.payload_len = 64;
    workload::Ycsb ycsb(&engine, yopts);
    Outcome out;
    if (!ycsb.Setup().ok()) {
      Check(false, "ycsb setup: mode identity leg");
      return out;
    }
    Rng rng(args.seed);
    const uint64_t txns = args.quick ? 60 : 200;
    host::TxnList list;
    for (uint32_t w = 0; w < opts.n_workers; ++w) {
      for (uint64_t i = 0; i < txns; ++i) {
        list.emplace_back(w, ycsb.MakeTxn(&rng, w));
      }
    }
    out.result = host::RunToCompletion(&engine, list);
    out.final_now = engine.now();
    StatsRegistry reg;
    engine.CollectStats(&reg);
    out.stats_json = reg.ToJson();
    if (record) {
      StatsRegistry& run =
          g_report->AddEngineRun("modes/batched_put", &engine, out.result);
      RecordBatchCounters(&run, &engine);
    }
    return out;
  };
  const Outcome serial = run_mode(BenchArgs::SimMode::kSerial, true);
  for (auto [mode, name] :
       {std::pair{BenchArgs::SimMode::kEventDriven, "event"},
        std::pair{BenchArgs::SimMode::kParallel, "parallel"}}) {
    const Outcome other = run_mode(mode, false);
    Check(other.final_now == serial.final_now,
          std::string("final cycle matches serial: ") + name);
    Check(other.result.committed == serial.result.committed &&
              other.result.failed == serial.result.failed,
          std::string("txn counts match serial: ") + name);
    Check(other.stats_json == serial.stats_json,
          std::string("stats tree byte-identical to serial: ") + name);
  }
  std::printf("serial/event/parallel: %llu committed, final cycle %llu\n",
              static_cast<unsigned long long>(serial.result.committed),
              static_cast<unsigned long long>(serial.final_now));
}

}  // namespace
}  // namespace bionicdb

int main(int argc, char** argv) {
  auto args = bionicdb::bench::BenchArgs::Parse(argc, argv);
  bionicdb::bench::BenchReport report("batch_traversal");
  bionicdb::g_report = &report;
  bionicdb::DensePointLeg(args);
  bionicdb::ScanLeg(args);
  bionicdb::TailLatencyLeg(args);
  bionicdb::ModeIdentityLeg(args);
  report.WriteFile();
  if (bionicdb::g_failures != 0) {
    std::fprintf(stderr, "batch_traversal: %d check(s) failed\n",
                 bionicdb::g_failures);
    return 1;
  }
  std::printf("batch_traversal: all checks passed\n");
  return 0;
}
