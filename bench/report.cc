#include "bench/report.h"

#include <cstdio>

#include "common/json.h"

namespace bionicdb::bench {

namespace {

/// Re-indents a pretty-printed JSON block so it nests at `pad` spaces.
/// The first line is left alone (it follows a key on the same line).
std::string IndentBlock(const std::string& block, int pad) {
  std::string out;
  out.reserve(block.size() + 64);
  std::string prefix(size_t(pad), ' ');
  for (size_t i = 0; i < block.size(); ++i) {
    out.push_back(block[i]);
    if (block[i] == '\n' && i + 1 < block.size()) out += prefix;
  }
  return out;
}

}  // namespace

StatsRegistry& BenchReport::AddRun(const std::string& label) {
  runs_.emplace_back(label, StatsRegistry());
  return runs_.back().second;
}

StatsRegistry& BenchReport::AddEngineRun(const std::string& label,
                                         core::BionicDb* engine,
                                         const host::RunResult& result) {
  StatsRegistry& reg = AddRun(label);
  engine->CollectStats(&reg);
  reg.SetCounter("run/submitted", result.submitted);
  reg.SetCounter("run/committed", result.committed);
  reg.SetCounter("run/failed", result.failed);
  reg.SetCounter("run/retries", result.retries);
  reg.SetCounter("run/cycles", result.cycles);
  reg.SetGauge("run/tps", result.tps);
  reg.SetGauge("run/wall_seconds", result.wall_seconds);
  reg.SetGauge("run/sim_cycles_per_second", result.SimCyclesPerSecond());
  return reg;
}

StatsRegistry& BenchReport::AddEngineRun(
    const std::string& label, core::BionicDb* engine,
    const host::ClosedLoopResult& result) {
  StatsRegistry& reg = AddRun(label);
  engine->CollectStats(&reg);
  reg.SetCounter("run/submitted", result.submitted);
  reg.SetCounter("run/committed", result.committed);
  reg.SetCounter("run/failed", result.failed);
  reg.SetCounter("run/retries", result.retries);
  reg.SetCounter("run/cycles", result.cycles);
  reg.SetGauge("run/tps", result.tps);
  reg.SetGauge("run/wall_seconds", result.wall_seconds);
  reg.SetGauge("run/sim_cycles_per_second", result.SimCyclesPerSecond());
  reg.SetSummary("run/latency_cycles", result.latency_cycles);
  return reg;
}

StatsRegistry& BenchReport::AddEngineRun(const std::string& label,
                                         core::BionicDb* engine,
                                         const host::OpenLoopResult& result) {
  StatsRegistry& reg = AddRun(label);
  engine->CollectStats(&reg);
  host::RecordOpenLoopStats(result, StatsScope(&reg, "run"));
  return reg;
}

std::string BenchReport::ToJson() const {
  // Assembled by hand: the run stats arrive as finished JSON blocks from
  // StatsRegistry::ToJson, spliced in with adjusted indentation.
  std::string out = "{\n";
  out += "  \"bench\": \"" + json::Escape(name_) + "\",\n";
  out += "  \"schema_version\": 1,\n";
  out += "  \"runs\": [";
  for (size_t i = 0; i < runs_.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    {\n";
    out += "      \"label\": \"" + json::Escape(runs_[i].first) + "\",\n";
    out += "      \"stats\": " + IndentBlock(runs_[i].second.ToJson(2), 6);
    out += "\n    }";
  }
  out += runs_.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

std::string BenchReport::WriteFile() const {
  std::string path = "BENCH_" + name_ + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "report: cannot open %s for writing\n",
                 path.c_str());
    return "";
  }
  std::string doc = ToJson();
  size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  std::fclose(f);
  if (written != doc.size()) {
    std::fprintf(stderr, "report: short write to %s\n", path.c_str());
    return "";
  }
  std::printf("(report written to %s)\n", path.c_str());
  return path;
}

}  // namespace bionicdb::bench
