#include "bench/report.h"

#include <cstdio>

#include "common/json.h"

namespace bionicdb::bench {

namespace {

/// Re-indents a pretty-printed JSON block so it nests at `pad` spaces.
/// The first line is left alone (it follows a key on the same line).
std::string IndentBlock(const std::string& block, int pad) {
  std::string out;
  out.reserve(block.size() + 64);
  std::string prefix(size_t(pad), ' ');
  for (size_t i = 0; i < block.size(); ++i) {
    out.push_back(block[i]);
    if (block[i] == '\n' && i + 1 < block.size()) out += prefix;
  }
  return out;
}

}  // namespace

StatsRegistry& BenchReport::AddRun(const std::string& label) {
  runs_.emplace_back(label, StatsRegistry());
  return runs_.back().second;
}

StatsRegistry& BenchReport::AddEngineRun(const std::string& label,
                                         core::BionicDb* engine,
                                         const host::RunResult& result) {
  StatsRegistry& reg = AddRun(label);
  engine->CollectStats(&reg);
  reg.SetCounter("run/submitted", result.submitted);
  reg.SetCounter("run/committed", result.committed);
  reg.SetCounter("run/failed", result.failed);
  reg.SetCounter("run/retries", result.retries);
  reg.SetCounter("run/cycles", result.cycles);
  reg.SetGauge("run/tps", result.tps);
  reg.SetGauge("run/wall_seconds", result.wall_seconds);
  reg.SetGauge("run/sim_cycles_per_second", result.SimCyclesPerSecond());
  return reg;
}

StatsRegistry& BenchReport::AddEngineRun(
    const std::string& label, core::BionicDb* engine,
    const host::ClosedLoopResult& result) {
  StatsRegistry& reg = AddRun(label);
  engine->CollectStats(&reg);
  reg.SetCounter("run/submitted", result.submitted);
  reg.SetCounter("run/committed", result.committed);
  reg.SetCounter("run/failed", result.failed);
  reg.SetCounter("run/retries", result.retries);
  reg.SetCounter("run/cycles", result.cycles);
  reg.SetGauge("run/tps", result.tps);
  reg.SetGauge("run/wall_seconds", result.wall_seconds);
  reg.SetGauge("run/sim_cycles_per_second", result.SimCyclesPerSecond());
  reg.SetSummary("run/latency_cycles", result.latency_cycles);
  return reg;
}

StatsRegistry& BenchReport::AddEngineRun(const std::string& label,
                                         core::BionicDb* engine,
                                         const host::OpenLoopResult& result) {
  StatsRegistry& reg = AddRun(label);
  engine->CollectStats(&reg);
  host::RecordOpenLoopStats(result, StatsScope(&reg, "run"));
  return reg;
}

StatsRegistry& BenchReport::AddClusterRun(const std::string& label,
                                          cluster::ClusterDb* cluster,
                                          const host::ClusterRunResult& result,
                                          double multisite_fraction) {
  StatsRegistry& reg = AddRun(label);
  cluster->CollectStats(&reg);
  // Cluster totals, exactly once. The result's top-level counters are
  // already the per-chip sums (and its latency summary the weighted merge
  // of the per-chip digests), so this must NOT add the chip rows on top —
  // doing so would double-count every transaction.
  reg.SetCounter("run/submitted", result.submitted);
  reg.SetCounter("run/committed", result.committed);
  reg.SetCounter("run/failed", result.failed);
  reg.SetCounter("run/retries", result.retries);
  reg.SetCounter("run/cycles", result.cycles);
  reg.SetGauge("run/tps", result.tps);
  reg.SetGauge("run/wall_seconds", result.wall_seconds);
  reg.SetGauge("run/sim_cycles_per_second", result.SimCyclesPerSecond());
  reg.SetSummary("run/latency_cycles", result.latency_cycles);
  reg.SetGauge("run/latency/p50", result.latency_cycles.Quantile(0.5));
  reg.SetGauge("run/latency/p99", result.latency_cycles.Quantile(0.99));
  reg.SetCounter("run/cluster/n_chips", cluster->n_chips());
  reg.SetCounter("run/cluster/workers_per_chip",
                 cluster->workers_per_chip());
  reg.SetGauge("run/cluster/multisite_fraction", multisite_fraction);
  for (size_t c = 0; c < result.chips.size(); ++c) {
    const auto& chip = result.chips[c];
    const std::string p = "run/chips/" + std::to_string(c) + "/";
    reg.SetCounter(p + "submitted", chip.submitted);
    reg.SetCounter(p + "committed", chip.committed);
    reg.SetCounter(p + "failed", chip.failed);
    reg.SetCounter(p + "retries", chip.retries);
    reg.SetSummary(p + "latency_cycles", chip.latency_cycles);
  }
  return reg;
}

std::string BenchReport::ToJson() const {
  // Assembled by hand: the run stats arrive as finished JSON blocks from
  // StatsRegistry::ToJson, spliced in with adjusted indentation.
  std::string out = "{\n";
  out += "  \"bench\": \"" + json::Escape(name_) + "\",\n";
  out += "  \"schema_version\": 1,\n";
  out += "  \"runs\": [";
  for (size_t i = 0; i < runs_.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    {\n";
    out += "      \"label\": \"" + json::Escape(runs_[i].first) + "\",\n";
    out += "      \"stats\": " + IndentBlock(runs_[i].second.ToJson(2), 6);
    out += "\n    }";
  }
  out += runs_.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

std::string BenchReport::WriteFile() const {
  std::string path = "BENCH_" + name_ + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "report: cannot open %s for writing\n",
                 path.c_str());
    return "";
  }
  std::string doc = ToJson();
  size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  std::fclose(f);
  if (written != doc.size()) {
    std::fprintf(stderr, "report: short write to %s\n", path.c_str());
    return "";
  }
  std::printf("(report written to %s)\n", path.c_str());
  return path;
}

}  // namespace bionicdb::bench
