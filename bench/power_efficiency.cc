// Headline result — performance per watt (paper abstract + section 5.8):
// BionicDB delivers an order of magnitude better power efficiency while
// staying performance-competitive.
#include "baseline/workloads.h"
#include "bench/bench_util.h"
#include "bench/report.h"
#include "power/model.h"
#include "workload/ycsb.h"

namespace bionicdb {
namespace {

bench::BenchReport* g_report = nullptr;

double RunBionic(const bench::BenchArgs& args, uint32_t workers) {
  core::EngineOptions opts;
  opts.n_workers = workers;
  core::BionicDb engine(opts);
  workload::YcsbOptions yopts;
  yopts.records_per_partition = args.quick ? 5'000 : 50'000;
  yopts.payload_len = args.quick ? 64 : 1024;
  workload::Ycsb ycsb(&engine, yopts);
  if (!ycsb.Setup().ok()) return 0;
  Rng rng(args.seed);
  const uint64_t txns = args.quick ? 300 : 2'000;
  host::TxnList list;
  for (uint32_t w = 0; w < workers; ++w) {
    for (uint64_t i = 0; i < txns; ++i) {
      list.emplace_back(w, ycsb.MakeTxn(&rng, w));
    }
  }
  auto r = host::RunToCompletion(&engine, list);
  g_report->AddEngineRun("ycsb_c/workers=" + std::to_string(workers),
                         &engine, r);
  return r.tps;
}

}  // namespace
}  // namespace bionicdb

int main(int argc, char** argv) {
  using namespace bionicdb;
  auto args = bench::BenchArgs::Parse(argc, argv);
  bench::BenchReport report("power_efficiency");
  g_report = &report;
  bench::PrintHeader("Power efficiency", "YCSB-C transactions/second/watt");

  double bionic_tps = RunBionic(args, 4);
  double bionic_watts = power::PowerModel::BionicDbWatts(4);

  baseline::SiloYcsbOptions sopts;
  sopts.records = args.quick ? 20'000 : 200'000;
  sopts.payload_len = args.quick ? 64 : 256;
  baseline::SiloYcsb silo(sopts);
  silo.Setup();
  uint32_t threads = bench::MaxBaselineThreads();
  double silo_tps =
      silo.RunPointTxns(threads, args.quick ? 2'000 : 20'000).tps;
  // Attribute TDP per chip: 6 cores per Xeon E7-4807.
  uint32_t chips = (threads + 5) / 6;
  double silo_watts = power::PowerModel::XeonWatts(chips);

  TablePrinter table(
      {"system", "kTps", "watts", "kTps/W", "relative efficiency"});
  double bionic_eff = bionic_tps / bionic_watts;
  double silo_eff = silo_tps / silo_watts;
  table.AddRow({"BionicDB (4 workers)", bench::Ktps(bionic_tps),
                TablePrinter::Num(bionic_watts, 1),
                TablePrinter::Num(bionic_eff / 1e3, 2),
                TablePrinter::Num(silo_eff > 0 ? bionic_eff / silo_eff : 0,
                                  1) +
                    "x"});
  table.AddRow({"Silo (" + std::to_string(threads) + " threads)",
                bench::Ktps(silo_tps), TablePrinter::Num(silo_watts, 0),
                TablePrinter::Num(silo_eff / 1e3, 2), "1.0x"});
  table.Print();
  StatsRegistry& reg = report.AddRun("efficiency");
  reg.SetGauge("bionicdb/tps", bionic_tps);
  reg.SetGauge("bionicdb/watts", bionic_watts);
  reg.SetGauge("bionicdb/tps_per_watt", bionic_eff);
  reg.SetGauge("silo/tps", silo_tps);
  reg.SetGauge("silo/watts", silo_watts);
  reg.SetGauge("silo/tps_per_watt", silo_eff);
  report.WriteFile();
  return 0;
}
