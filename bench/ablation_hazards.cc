// Ablation — cost and necessity of pipeline-stall hazard prevention.
//
// DESIGN.md calls out the lock-table coordination scheme (paper Figs. 6/7)
// as a design choice worth quantifying: what does the hazard check cost,
// how often does it stall, and what breaks without it?
//
// WARNING: the "OFF" row runs a deliberately broken configuration; the
// lost-tuples column shows why the lock table exists.
#include "bench/bench_util.h"
#include "bench/report.h"
#include "db/hash_layout.h"
#include "workload/kv.h"

namespace bionicdb {
namespace {

bench::BenchReport* g_report = nullptr;

struct Outcome {
  double mops = 0;
  uint64_t stall_cycles = 0;
  uint64_t lost_tuples = 0;
};

Outcome Run(const bench::BenchArgs& args, bool prevention) {
  core::EngineOptions opts;
  opts.n_workers = 1;
  opts.coproc.max_inflight = 24;
  opts.coproc.hash.hazard_prevention = prevention;
  core::BionicDb engine(opts);
  workload::KvOptions kopts;
  // No preload: KvBench then sizes the table at ~1K buckets, so the 24
  // in-flight inserts regularly collide — exactly the hazard window.
  kopts.preload_per_partition = 0;
  kopts.ops_per_txn = 60;
  workload::KvBench kv(&engine, kopts);
  if (!kv.Setup().ok()) return {};

  const uint64_t txns = args.quick ? 30 : 150;
  host::TxnList list;
  uint64_t expected = 0;
  for (uint64_t i = 0; i < txns; ++i) {
    list.emplace_back(0, kv.MakeInsertTxn(0, /*sequential=*/false));
    expected += kopts.ops_per_txn;
  }
  auto r = host::RunToCompletion(&engine, list, /*retry_aborts=*/false);
  g_report->AddEngineRun(prevention ? "prevention=on" : "prevention=off",
                         &engine, r);
  Outcome out;
  out.mops = r.tps * kopts.ops_per_txn;
  out.stall_cycles = engine.worker(0)
                         .coprocessor()
                         .hash_pipeline()
                         .counters()
                         .Get("hash_lock_stall_cycles");
  uint64_t survivors = 0;
  engine.database().hash_index(0, 0)->ForEach([&](db::TupleAccessor) {
    ++survivors;
    return true;
  });
  out.lost_tuples = expected > survivors ? expected - survivors : 0;
  return out;
}

}  // namespace
}  // namespace bionicdb

int main(int argc, char** argv) {
  using namespace bionicdb;
  auto args = bench::BenchArgs::Parse(argc, argv);
  bench::BenchReport report("ablation_hazards");
  g_report = &report;
  bench::PrintHeader("Ablation",
                     "Hash-pipeline hazard prevention: cost and necessity");
  TablePrinter table({"prevention", "insert (Mops)", "lock-stall cycles",
                      "lost tuples"});
  for (bool prevention : {true, false}) {
    auto o = Run(args, prevention);
    table.AddRow({prevention ? "on" : "OFF (broken)", bench::Mops(o.mops),
                  std::to_string(o.stall_cycles),
                  std::to_string(o.lost_tuples)});
  }
  table.Print();
  std::printf(
      "(Prevention costs only the stall cycles shown; disabling it loses\n"
      " tuples whenever racing inserts share a bucket — Fig. 6a.)\n");
  report.WriteFile();
  return 0;
}
