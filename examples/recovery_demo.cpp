// Recovery demo: the command-logging durability scheme of paper section 4.8
// (which the paper designs but does not implement) running end-to-end:
//
//   1. checkpoint a populated database,
//   2. execute transactions while persisting the input blocks (the command
//      log) to a file BEFORE returning them,
//   3. "crash" (throw the whole engine away),
//   4. recover a fresh engine: restore the checkpoint, replay committed
//      blocks in commit-timestamp order, fast-forward the hardware clock,
//   5. prove the recovered state is byte-equivalent.
//
//   ./recovery_demo
#include <cstdio>

#include "common/random.h"
#include "log/command_log.h"
#include "workload/ycsb.h"

using namespace bionicdb;

namespace {

core::EngineOptions Opts() {
  core::EngineOptions o;
  o.n_workers = 2;
  return o;
}

workload::YcsbOptions YcsbOpts() {
  workload::YcsbOptions o;
  o.mode = workload::YcsbOptions::Mode::kUpdateMix;
  o.records_per_partition = 1'000;
  o.payload_len = 64;
  o.accesses_per_txn = 6;
  o.updates_per_txn = 3;
  return o;
}

}  // namespace

int main() {
  const std::string log_path = "/tmp/bionicdb_recovery_demo.cmdlog";
  const std::string ckpt_path = "/tmp/bionicdb_recovery_demo.ckpt";

  // --- Phase 1: normal operation with logging ----------------------------
  core::BionicDb engine(Opts());
  workload::Ycsb ycsb(&engine, YcsbOpts());
  if (!ycsb.Setup().ok()) return 1;

  log::Checkpoint checkpoint = log::Checkpoint::Capture(engine.database());
  if (!checkpoint.SaveToFile(ckpt_path).ok()) return 1;
  std::printf("checkpoint captured (%zu table dumps)\n",
              checkpoint.dumps().size());

  log::CommandLog cmd_log(&engine);
  Rng rng(21);
  std::vector<std::pair<size_t, sim::Addr>> submitted;
  for (uint32_t w = 0; w < 2; ++w) {
    for (int i = 0; i < 40; ++i) {
      sim::Addr block = ycsb.MakeTxn(&rng, w);
      submitted.emplace_back(cmd_log.Append(w, block), block);
      engine.Submit(w, block);
    }
  }
  engine.Drain();
  for (const auto& [rec, block] : submitted) cmd_log.MarkOutcome(rec, block);
  if (!cmd_log.SaveToFile(log_path).ok()) return 1;
  std::printf("executed %llu transactions (%llu committed), command log "
              "persisted: %zu records\n",
              (unsigned long long)submitted.size(),
              (unsigned long long)engine.TotalCommitted(),
              cmd_log.records().size());
  log::Checkpoint state_before_crash =
      log::Checkpoint::Capture(engine.database());

  // --- Phase 2: crash (drop the engine) and recover from disk ------------
  std::printf("simulating crash; recovering from %s + %s ...\n",
              ckpt_path.c_str(), log_path.c_str());
  core::BionicDb recovered(Opts());
  // Recreate schema + stored procedures (in a real deployment these are
  // part of the catalogue upload, re-done by the host at boot).
  for (const db::TableSchema& schema :
       engine.database().catalogue().tables()) {
    if (!recovered.database().CreateTable(schema).ok()) return 1;
  }
  const db::ProcedureInfo* proc =
      engine.database().catalogue().FindProcedure(workload::Ycsb::kTxnType);
  if (!recovered
           .RegisterProcedure(workload::Ycsb::kTxnType, proc->program,
                              proc->block_data_size)
           .ok()) {
    return 1;
  }

  log::Checkpoint loaded_ckpt;
  log::CommandLog loaded_log(&recovered);
  if (!loaded_ckpt.LoadFromFile(ckpt_path).ok()) return 1;
  if (!loaded_log.LoadFromFile(log_path).ok()) return 1;
  if (auto s = log::Recover(&recovered, loaded_ckpt, loaded_log); !s.ok()) {
    std::fprintf(stderr, "recover: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("replayed %zu committed transactions\n",
              loaded_log.ReplayOrder().size());

  // --- Phase 3: verify ----------------------------------------------------
  log::Checkpoint state_after_recovery =
      log::Checkpoint::Capture(recovered.database());
  bool equal = state_before_crash.Equivalent(state_after_recovery);
  std::printf("recovered state %s the pre-crash state\n",
              equal ? "MATCHES" : "DIFFERS FROM");
  std::remove(log_path.c_str());
  std::remove(ckpt_path.c_str());
  return equal ? 0 : 1;
}
