// Quickstart: the smallest complete BionicDB program.
//
// Builds a one-worker engine, creates a key-value table, writes a stored
// procedure in BionicDB assembly (the same workflow the paper uses: hand-
// written procedures, no SQL front-end), uploads it to the catalogue,
// executes a few transactions and reads the results back.
//
//   ./quickstart
#include <cstdio>

#include "core/engine.h"
#include "db/tuple.h"
#include "host/driver.h"
#include "isa/assembler.h"

using namespace bionicdb;

int main() {
  // 1. An engine: simulator + DRAM + partitioned database + workers.
  core::EngineOptions options;
  options.n_workers = 1;
  core::BionicDb engine(options);

  // 2. A table served by the hardware hash index.
  db::TableSchema schema;
  schema.id = 0;
  schema.name = "accounts";
  schema.index = db::IndexKind::kHash;
  schema.key_len = 8;
  schema.payload_len = 8;  // a single 64-bit balance
  if (auto s = engine.database().CreateTable(schema); !s.ok()) {
    std::fprintf(stderr, "CreateTable: %s\n", s.ToString().c_str());
    return 1;
  }

  // 3. A stored procedure in BionicDB assembly: "deposit" — look up the
  //    account whose key is at offset 0 of the transaction block, add the
  //    amount at offset 8 to its balance, UNDO-logging the original.
  const char* deposit_source = R"(
    ; transaction block layout:
    ;   0  account key (8 B)
    ;   8  amount     (8 B)
    ;  16  UNDO: original balance
    .logic
      UPDATE t0, key=0, cp=0      ; locate + dirty the tuple
      YIELD
    .commit
      RET   r1, cp0               ; r1 = payload address (aborts on error)
      LOAD  r2, [r1 + 0]          ; original balance
      STORE r2, [r0 + 16]         ; UNDO backup into the block
      LOAD  r3, [r0 + 8]          ; amount
      ADD   r2, r2, r3
      STORE r2, [r1 + 0]          ; in-place update
      COMMIT
    .abort
      ABORT
  )";
  auto program = isa::Assemble(deposit_source);
  if (!program.ok()) {
    std::fprintf(stderr, "assemble: %s\n", program.status().ToString().c_str());
    return 1;
  }
  std::printf("Deposit stored procedure:\n%s\n",
              program.value().Disassemble().c_str());
  constexpr db::TxnTypeId kDeposit = 1;
  if (auto s = engine.RegisterProcedure(kDeposit, program.value(), 64);
      !s.ok()) {
    std::fprintf(stderr, "register: %s\n", s.ToString().c_str());
    return 1;
  }

  // 4. Populate one account (host-side bulk load, like the paper).
  uint64_t initial_balance = 1000;
  engine.database().LoadU64(0, 0, /*key=*/42, &initial_balance, 8);

  // 5. Submit three deposits through the host driver. All three update the
  //    same tuple, so BionicDB's blind-reject timestamp CC aborts the
  //    batchmates of the first winner; the driver retries them — the normal
  //    client protocol for this engine.
  host::TxnList txns;
  for (uint64_t amount : {100, 250, 7}) {
    db::TxnBlock block = engine.AllocateBlock(kDeposit);
    block.WriteKeyU64(0, 42);
    block.WriteU64(8, amount);
    txns.emplace_back(0, block.base());
  }
  host::RunResult run = host::RunToCompletion(&engine, txns);
  uint64_t cycles = run.cycles;

  // 6. Inspect the result functionally.
  sim::Addr tuple = engine.database().FindU64(0, 0, 42);
  db::TupleAccessor accessor(engine.database().dram(), tuple);
  uint64_t balance = 0;
  engine.database().dram()->ReadBytes(accessor.payload_addr(), &balance, 8);

  std::printf("committed=%llu retries=%llu in %llu cycles (%.2f us at %.0f MHz)\n",
              (unsigned long long)engine.TotalCommitted(),
              (unsigned long long)run.retries,
              (unsigned long long)cycles,
              options.timing.CyclesToSeconds(cycles) * 1e6,
              options.timing.clock_mhz);
  std::printf("account 42 balance: %llu (expected 1357)\n",
              (unsigned long long)balance);
  return balance == 1357 ? 0 : 1;
}
