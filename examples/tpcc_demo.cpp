// TPC-C demo: the NewOrder/Payment mix on a 4-warehouse BionicDB, with
// end-of-run verification of the database invariants (district order
// counters and money conservation) straight out of the simulated DRAM.
//
//   ./tpcc_demo
#include <cstdio>

#include "common/random.h"
#include "db/tuple.h"
#include "host/driver.h"
#include "workload/tpcc.h"

using namespace bionicdb;

namespace {

uint64_t PayloadField(core::BionicDb* engine, db::TableId table,
                      db::PartitionId partition, uint64_t key,
                      int64_t offset) {
  sim::Addr tuple = engine->database().FindU64Le(table, partition, key);
  if (tuple == sim::kNullAddr) return 0;
  db::TupleAccessor accessor(engine->database().dram(), tuple);
  uint64_t v = 0;
  engine->database().dram()->ReadBytes(accessor.payload_addr() + offset, &v,
                                       8);
  return v;
}

}  // namespace

int main() {
  core::EngineOptions opts;
  opts.n_workers = 4;
  opts.softcore.max_contexts = 4;  // contention-friendly batches
  core::BionicDb engine(opts);

  workload::TpccOptions topts;
  topts.districts_per_warehouse = 10;
  topts.customers_per_district = 300;
  topts.items = 10'000;
  topts.ol_cnt = 10;
  workload::Tpcc tpcc(&engine, topts);
  if (auto s = tpcc.Setup(); !s.ok()) {
    std::fprintf(stderr, "setup: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("Populated %u warehouses (%llu bytes of simulated DRAM)\n",
              opts.n_workers,
              (unsigned long long)engine.database().dram()->allocated_bytes());

  Rng rng(7);
  host::TxnList txns;
  constexpr uint64_t kPerWorker = 400;
  for (uint32_t w = 0; w < opts.n_workers; ++w) {
    for (uint64_t i = 0; i < kPerWorker; ++i) {
      txns.emplace_back(w, tpcc.MakeMixed(&rng, w));
    }
  }
  auto result = host::RunToCompletion(&engine, txns);
  std::printf("committed %llu / %llu (retries %llu) -> %.1f kTps "
              "at %.0f MHz\n",
              (unsigned long long)result.committed,
              (unsigned long long)result.submitted,
              (unsigned long long)result.retries, result.tps / 1e3,
              opts.timing.clock_mhz);

  // --- Verification against the paper's schema semantics -----------------
  // 1. Every committed NewOrder advanced exactly one district counter.
  uint64_t advanced = 0;
  for (uint32_t w = 0; w < opts.n_workers; ++w) {
    for (uint32_t d = 0; d < topts.districts_per_warehouse; ++d) {
      advanced += PayloadField(&engine, workload::Tpcc::kDistrict, w,
                               tpcc.DistrictKey(w, d),
                               workload::Tpcc::kDistrictNextOid) -
                  3001;
    }
  }
  // 2. Payment money conservation: sum of committed amounts == sum of
  //    warehouse YTDs == sum of district YTDs.
  uint64_t total_amount = 0, neworders = 0;
  for (const auto& [w, addr] : txns) {
    db::TxnBlock block(&engine.simulator().dram(), addr);
    if (block.state() != db::TxnState::kCommitted) continue;
    if (block.txn_type() == workload::Tpcc::kPaymentTxn) {
      total_amount += block.ReadU64(40);
    } else {
      ++neworders;
    }
  }
  uint64_t w_ytd = 0, d_ytd = 0;
  for (uint32_t w = 0; w < opts.n_workers; ++w) {
    w_ytd += PayloadField(&engine, workload::Tpcc::kWarehouse, w,
                          tpcc.WarehouseKey(w), workload::Tpcc::kWarehouseYtd);
    for (uint32_t d = 0; d < topts.districts_per_warehouse; ++d) {
      d_ytd += PayloadField(&engine, workload::Tpcc::kDistrict, w,
                            tpcc.DistrictKey(w, d),
                            workload::Tpcc::kDistrictYtd);
    }
  }
  std::printf("NewOrder commits: %llu, district counters advanced: %llu %s\n",
              (unsigned long long)neworders, (unsigned long long)advanced,
              neworders == advanced ? "[OK]" : "[MISMATCH]");
  std::printf("Payment sum: %llu, warehouse YTD: %llu, district YTD: %llu %s\n",
              (unsigned long long)total_amount, (unsigned long long)w_ytd,
              (unsigned long long)d_ytd,
              (total_amount == w_ytd && total_amount == d_ytd)
                  ? "[OK]"
                  : "[MISMATCH]");
  bool ok = neworders == advanced && total_amount == w_ytd &&
            total_amount == d_ytd && result.failed == 0;
  return ok ? 0 : 1;
}
