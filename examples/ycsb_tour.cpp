// YCSB tour: drives the engine through the paper's key workload and shows
// what the acceleration machinery is doing — index pipelining, transaction
// interleaving, on-chip message passing — via the hardware counters.
//
//   ./ycsb_tour
#include <cstdio>

#include "common/random.h"
#include "host/driver.h"
#include "workload/ycsb.h"

using namespace bionicdb;

namespace {

void Report(const char* name, const host::RunResult& r,
            core::BionicDb* engine) {
  std::printf("%-28s %8.1f kTps  (%llu committed, %llu cycles)\n", name,
              r.tps / 1e3, (unsigned long long)r.committed,
              (unsigned long long)r.cycles);
  const auto& stats = engine->worker(0).softcore().stats();
  std::printf("    worker 0: %llu batches, %llu context switches, "
              "%llu instructions\n",
              (unsigned long long)stats.batches,
              (unsigned long long)stats.context_switches,
              (unsigned long long)stats.instructions);
}

host::RunResult Run(core::BionicDb* engine, workload::Ycsb* ycsb,
                    uint64_t txns_per_worker, uint64_t seed) {
  Rng rng(seed);
  host::TxnList txns;
  for (uint32_t w = 0; w < engine->database().n_partitions(); ++w) {
    for (uint64_t i = 0; i < txns_per_worker; ++i) {
      txns.emplace_back(w, ycsb->MakeTxn(&rng, w));
    }
  }
  return host::RunToCompletion(engine, txns);
}

}  // namespace

int main() {
  constexpr uint64_t kTxns = 500;

  // --- YCSB-C: read-only, local ------------------------------------------
  {
    core::EngineOptions opts;
    opts.n_workers = 4;
    core::BionicDb engine(opts);
    workload::YcsbOptions yopts;
    yopts.mode = workload::YcsbOptions::Mode::kReadOnly;
    yopts.records_per_partition = 10'000;
    yopts.payload_len = 256;
    workload::Ycsb ycsb(&engine, yopts);
    if (!ycsb.Setup().ok()) return 1;
    auto r = Run(&engine, &ycsb, kTxns, 1);
    Report("YCSB-C (read-only)", r, &engine);
    auto& counters = engine.worker(0).coprocessor().hash_pipeline().counters();
    std::printf("    hash pipeline: %llu ops admitted, "
                "%llu lock-stall cycles\n",
                (unsigned long long)counters.Get("ops_admitted"),
                (unsigned long long)counters.Get("hash_lock_stall_cycles"));
  }

  // --- YCSB update mix: exercises UNDO logging + commit protocol ---------
  {
    core::EngineOptions opts;
    opts.n_workers = 4;
    core::BionicDb engine(opts);
    workload::YcsbOptions yopts;
    yopts.mode = workload::YcsbOptions::Mode::kUpdateMix;
    yopts.records_per_partition = 10'000;
    yopts.payload_len = 256;
    yopts.updates_per_txn = 8;
    workload::Ycsb ycsb(&engine, yopts);
    if (!ycsb.Setup().ok()) return 1;
    auto r = Run(&engine, &ycsb, kTxns, 2);
    Report("YCSB update mix (8/16)", r, &engine);
    std::printf("    retries due to CC conflicts: %llu\n",
                (unsigned long long)r.retries);
  }

  // --- Modified YCSB-E: scans over the hardware skiplist ------------------
  {
    core::EngineOptions opts;
    opts.n_workers = 4;
    core::BionicDb engine(opts);
    workload::YcsbOptions yopts;
    yopts.mode = workload::YcsbOptions::Mode::kScanOnly;
    yopts.records_per_partition = 10'000;
    yopts.payload_len = 256;
    yopts.scan_len = 50;
    workload::Ycsb ycsb(&engine, yopts);
    if (!ycsb.Setup().ok()) return 1;
    auto r = Run(&engine, &ycsb, 200, 3);
    Report("YCSB-E (scan-only, 50)", r, &engine);
    auto& counters =
        engine.worker(0).coprocessor().skiplist_pipeline().counters();
    std::printf("    skiplist pipeline: %llu scans, %llu tower visits\n",
                (unsigned long long)counters.Get("scans_completed"),
                (unsigned long long)counters.Get("tower_visits"));
  }

  // --- Cross-partition: 75% remote accesses over the channels -------------
  {
    core::EngineOptions opts;
    opts.n_workers = 4;
    core::BionicDb engine(opts);
    workload::YcsbOptions yopts;
    yopts.mode = workload::YcsbOptions::Mode::kMultisite;
    yopts.records_per_partition = 10'000;
    yopts.payload_len = 256;
    yopts.remote_fraction = 0.75;
    workload::Ycsb ycsb(&engine, yopts);
    if (!ycsb.Setup().ok()) return 1;
    auto r = Run(&engine, &ycsb, kTxns, 4);
    Report("YCSB-C multisite (75% rem)", r, &engine);
    std::printf("    on-chip messages exchanged: %llu\n",
                (unsigned long long)engine.fabric().messages_sent());
  }
  return 0;
}
