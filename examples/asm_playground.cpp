// Assembler playground: assemble a BionicDB stored procedure from a file
// (or run the built-in demo), print the disassembly and register budget,
// and optionally execute it against a scratch key-value table.
//
//   ./asm_playground                 # built-in demo program
//   ./asm_playground proc.basm       # assemble + run your program
//
// The scratch environment the program runs against:
//   * table t0: hash index, 8-byte keys, 8-byte payloads, keys 0..999
//     preloaded with payload = key * 10;
//   * one transaction block of 256 data bytes, zero-filled — your program's
//   key=/payload=/out= offsets address it, r0 holds its base.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/engine.h"
#include "db/tuple.h"
#include "isa/assembler.h"

using namespace bionicdb;

namespace {

const char* kDemo = R"(
; Demo: look up key 7, copy its payload value into the block at offset 8,
; then multiply it by 3 into offset 16.
.logic
  SEARCH t0, key=0, cp=0
  RET  r1, cp0
  LOAD r2, [r1 + 0]
  STORE r2, [r0 + 8]
  MUL  r3, r2, #3
  STORE r3, [r0 + 16]
  YIELD
.commit
  COMMIT
.abort
  ABORT
)";

}  // namespace

int main(int argc, char** argv) {
  std::string source = kDemo;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    source = ss.str();
  }

  auto program = isa::Assemble(source);
  if (!program.ok()) {
    std::fprintf(stderr, "assembly failed: %s\n",
                 program.status().ToString().c_str());
    return 1;
  }
  std::printf("=== disassembly ===\n%s\n", program.value().Disassemble().c_str());
  std::printf("registers: %u GP, %u CP  (a 256-register softcore batches %u "
              "of these)\n\n",
              program.value().gp_regs_used(), program.value().cp_regs_used(),
              program.value().cp_regs_used() > 0
                  ? 256 / program.value().cp_regs_used()
                  : 256);

  // Scratch environment.
  core::EngineOptions opts;
  opts.n_workers = 1;
  core::BionicDb engine(opts);
  db::TableSchema schema;
  schema.id = 0;
  schema.name = "scratch";
  schema.key_len = 8;
  schema.payload_len = 8;
  schema.hash_buckets = 2048;
  if (!engine.database().CreateTable(schema).ok()) return 1;
  for (uint64_t k = 0; k < 1000; ++k) {
    uint64_t payload = k * 10;
    engine.database().LoadU64(0, 0, k, &payload, 8);
  }
  if (!engine.RegisterProcedure(1, program.value(), 256).ok()) return 1;

  db::TxnBlock block = engine.AllocateBlock(1);
  block.WriteKeyU64(0, 7);  // default input: key 7 at offset 0
  engine.Submit(0, block.base());
  uint64_t cycles = engine.Drain();

  std::printf("=== execution ===\n");
  std::printf("state: %s in %llu cycles (%.2f us at %.0f MHz)\n",
              block.state() == db::TxnState::kCommitted ? "COMMITTED"
                                                        : "ABORTED",
              (unsigned long long)cycles,
              opts.timing.CyclesToSeconds(cycles) * 1e6,
              opts.timing.clock_mhz);
  std::printf("transaction block data (first 64 bytes, as u64 words):\n");
  for (int i = 0; i < 8; ++i) {
    std::printf("  [%2d] %llu\n", i * 8,
                (unsigned long long)block.ReadU64(i * 8));
  }
  return 0;
}
