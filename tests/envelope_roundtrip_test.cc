// Envelope round-trip property test (DESIGN.md section 12).
//
// Randomized request/response exchanges through the fabric with the
// reliability layer on and seeded comm faults (drop/duplicate/delay)
// battering every transmission. The endpoints here are deliberately thin —
// the test exercises the transport contract itself, for every message
// class:
//
//  * exactly-once apply: despite drops (forcing retransmits) and
//    duplicates, each request envelope is applied at its destination
//    exactly once, and each reply reaches its origin exactly once;
//  * class pairing: a kIndexOp is answered by a kIndexResult, a kMemOp by
//    a kMemResult, and the reply arrives with the class the server chose;
//  * header echo: the reply carries the request's origin/cp_index/txn_slot
//    and its sent_at stamp unchanged, so the origin's RTT measurement
//    (drain cycle - sent_at) is exact per class.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <tuple>
#include <vector>

#include "comm/channels.h"
#include "common/random.h"
#include "sim/config.h"

namespace bionicdb::comm {
namespace {

/// Seeded per-transmission chaos. Rates are high enough that a few hundred
/// messages see many drops, duplicates AND delayed copies.
class SeededFaults : public ChannelFaultHook {
 public:
  explicit SeededFaults(uint64_t seed) : rng_(seed) {}
  FaultDecision OnPacket(uint64_t, MessageClass, db::WorkerId,
                         db::WorkerId) override {
    FaultDecision fd;
    if (rng_.NextBool(0.15)) {
      fd.drop = true;
      return fd;
    }
    if (rng_.NextBool(0.10)) fd.duplicate = true;
    if (rng_.NextBool(0.10)) fd.delay_cycles = rng_.NextInRange(1, 40);
    return fd;
  }

 private:
  Rng rng_;
};

using RoundTripParams = std::tuple<uint64_t /*seed*/, uint32_t /*workers*/>;

class EnvelopeRoundTrip : public ::testing::TestWithParam<RoundTripParams> {};

TEST_P(EnvelopeRoundTrip, ExactlyOnceApplyAndRttEchoPerClass) {
  auto [seed, n_workers] = GetParam();
  CommFabric fabric(n_workers, sim::TimingConfig());
  fabric.set_reliability({.enabled = true, .retransmit_timeout_cycles = 64});
  SeededFaults faults(seed);
  fabric.set_fault_hook(&faults);

  constexpr uint32_t kMessages = 200;
  Rng plan_rng(seed ^ 0xabcdef);

  struct Sent {
    db::WorkerId src;
    db::WorkerId dst;
    MessageClass cls;
    uint64_t sent_at;
  };
  std::map<uint32_t, Sent> sent;           // id -> send record
  std::map<uint32_t, uint32_t> applied;    // id -> server-side apply count
  std::map<uint32_t, uint32_t> replied;    // id -> origin-side reply count

  uint32_t next_id = 0;
  uint64_t cycle = 0;
  // Interleave sends with delivery service so retransmit, dedup and fault
  // machinery all run while traffic is still being generated.
  while (next_id < kMessages || fabric.retransmits() < 1 ||
         replied.size() < kMessages) {
    ++cycle;
    ASSERT_LT(cycle, 200'000u) << "round trips did not converge: "
                               << replied.size() << "/" << kMessages;
    if (next_id < kMessages && cycle % 3 == 0) {
      const uint32_t id = next_id++;
      Header h;
      h.origin = db::WorkerId(plan_rng.NextUint64(n_workers));
      h.cp_index = id;
      h.txn_slot = id % 7;
      h.sent_at = cycle;  // the origin's wire-out stamp
      db::WorkerId dst = db::WorkerId(plan_rng.NextUint64(n_workers - 1));
      if (dst >= h.origin) ++dst;  // never self: envelopes always travel
      const bool mem = plan_rng.NextBool(0.5);
      Envelope env = mem ? Envelope(h, MemOp{MemOp::Kind::kLoad, id})
                         : Envelope(h, IndexOp{});
      fabric.Send(cycle, h.origin, dst, env);
      sent.emplace(id, Sent{h.origin, dst, env.cls(), cycle});
    }
    fabric.Tick(cycle);
    // Servers: apply each request and reply with the paired result class.
    for (uint32_t w = 0; w < n_workers; ++w) {
      auto& inbox = fabric.requests(w);
      while (!inbox.empty()) {
        const Envelope& req = inbox.front();
        const auto it = sent.find(req.hdr.cp_index);
        ASSERT_NE(it, sent.end());
        EXPECT_EQ(w, it->second.dst);
        EXPECT_EQ(req.cls(), it->second.cls);
        ++applied[req.hdr.cp_index];
        Envelope reply =
            req.cls() == MessageClass::kMemOp
                ? Envelope::Reply(req, MemResult{req.mem_op().addr})
                : Envelope::Reply(req, IndexResult{});
        fabric.Send(cycle, w, req.hdr.origin, reply);
        inbox.pop_front();
      }
      auto& replies = fabric.responses(w);
      while (!replies.empty()) {
        const Envelope& r = replies.front();
        const auto it = sent.find(r.hdr.cp_index);
        ASSERT_NE(it, sent.end());
        const Sent& record = it->second;
        EXPECT_EQ(w, record.src);
        // Class pairing: requests come back as their paired result class.
        EXPECT_EQ(r.cls(), record.cls == MessageClass::kMemOp
                               ? MessageClass::kMemResult
                               : MessageClass::kIndexResult);
        // Header echo: the RTT stamp survives both hops (and any
        // retransmissions) unchanged, so the measured round trip is exact.
        EXPECT_EQ(r.hdr.sent_at, record.sent_at);
        EXPECT_EQ(r.hdr.txn_slot, r.hdr.cp_index % 7);
        EXPECT_GE(cycle - r.hdr.sent_at,
                  uint64_t(fabric.HopLatency(record.src, record.dst) +
                           fabric.HopLatency(record.dst, record.src)));
        if (r.cls() == MessageClass::kMemResult) {
          EXPECT_EQ(r.mem_result().value, r.hdr.cp_index);
        }
        ++replied[r.hdr.cp_index];
        replies.pop_front();
      }
    }
  }
  // Drain any trailing retransmitted copies; dedup must suppress them all.
  for (uint64_t c = cycle + 1; c < cycle + 500; ++c) {
    fabric.Tick(c);
    for (uint32_t w = 0; w < n_workers; ++w) {
      ASSERT_TRUE(fabric.requests(w).empty());
      ASSERT_TRUE(fabric.responses(w).empty());
    }
  }

  // Exactly-once: every message applied once and answered once, despite
  // the drop rate guaranteeing retransmissions occurred.
  EXPECT_GT(fabric.retransmits(), 0u);
  ASSERT_EQ(applied.size(), kMessages);
  ASSERT_EQ(replied.size(), kMessages);
  for (const auto& [id, n] : applied) EXPECT_EQ(n, 1u) << "id " << id;
  for (const auto& [id, n] : replied) EXPECT_EQ(n, 1u) << "id " << id;

  // Per-class accounting: everything sent was (eventually) delivered
  // exactly once, and only request/response classes that were used moved.
  for (MessageClass c :
       {MessageClass::kIndexOp, MessageClass::kMemOp,
        MessageClass::kIndexResult, MessageClass::kMemResult}) {
    EXPECT_EQ(fabric.class_sent(c), fabric.class_delivered(c))
        << MessageClassName(c);
  }
  EXPECT_EQ(fabric.class_sent(MessageClass::kIndexOp),
            fabric.class_delivered(MessageClass::kIndexResult));
  EXPECT_EQ(fabric.class_sent(MessageClass::kMemOp),
            fabric.class_delivered(MessageClass::kMemResult));
  EXPECT_EQ(fabric.class_sent(MessageClass::kIndexOp) +
                fabric.class_sent(MessageClass::kMemOp),
            uint64_t(kMessages));
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndTopologies, EnvelopeRoundTrip,
    ::testing::Combine(::testing::Values(1ull, 7ull, 1234567ull),
                       ::testing::Values(2u, 4u, 8u)));

}  // namespace
}  // namespace bionicdb::comm
