// Tests for the Silo-style software baseline: index correctness under
// concurrency, OCC validation semantics, and workload-level oracles.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "baseline/hash_index.h"
#include "baseline/olc_btree.h"
#include "baseline/silo.h"
#include "baseline/sw_skiplist.h"
#include "baseline/workloads.h"
#include "common/random.h"

namespace bionicdb::baseline {
namespace {

TEST(OlcBTree, SingleThreadInsertFindScan) {
  Arena arena;
  OlcBTree tree(&arena);
  Rng rng(1);
  std::set<uint64_t> keys;
  while (keys.size() < 5000) keys.insert(rng.Next() % 1000000);
  for (uint64_t k : keys) {
    Record* r = arena.AllocateRecord(8);
    *reinterpret_cast<uint64_t*>(r->payload()) = k * 2;
    tree.Insert(k, r);
  }
  for (uint64_t k : keys) {
    Record* r = tree.Find(k);
    ASSERT_NE(r, nullptr) << k;
    EXPECT_EQ(*reinterpret_cast<uint64_t*>(r->payload()), k * 2);
  }
  EXPECT_EQ(tree.Find(2000000), nullptr);

  // Scan returns sorted order from an arbitrary start.
  uint64_t prev = 0;
  uint32_t n = tree.Scan(*keys.begin(), 1000, [&](uint64_t k, Record*) {
    EXPECT_GE(k, prev);
    prev = k;
    return true;
  });
  EXPECT_EQ(n, 1000u);
}

TEST(OlcBTree, ConcurrentDisjointInserts) {
  Arena arena;
  OlcBTree tree(&arena);
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        uint64_t key = uint64_t(t) * kPerThread + i;
        Record* r = arena.AllocateRecord(8);
        *reinterpret_cast<uint64_t*>(r->payload()) = key;
        tree.Insert(key, r);
      }
    });
  }
  for (auto& t : pool) t.join();
  for (uint64_t k = 0; k < kThreads * kPerThread; ++k) {
    Record* r = tree.Find(k);
    ASSERT_NE(r, nullptr) << k;
    EXPECT_EQ(*reinterpret_cast<uint64_t*>(r->payload()), k);
  }
  // Full scan sees every key exactly once, in order.
  uint64_t expect = 0;
  tree.Scan(0, kThreads * kPerThread, [&](uint64_t k, Record*) {
    EXPECT_EQ(k, expect);
    ++expect;
    return true;
  });
  EXPECT_EQ(expect, kThreads * kPerThread);
}

TEST(OlcBTree, ReadersDuringInserts) {
  Arena arena;
  OlcBTree tree(&arena);
  std::atomic<uint64_t> max_inserted{0};
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (uint64_t k = 1; k <= 100000; ++k) {
      Record* r = arena.AllocateRecord(8);
      *reinterpret_cast<uint64_t*>(r->payload()) = k;
      tree.Insert(k, r);
      max_inserted.store(k, std::memory_order_release);
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  std::atomic<uint64_t> misses{0};
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(t + 99);
      while (!stop.load(std::memory_order_acquire)) {
        uint64_t hi = max_inserted.load(std::memory_order_acquire);
        if (hi == 0) continue;
        uint64_t k = 1 + rng.NextUint64(hi);
        if (tree.Find(k) == nullptr) misses.fetch_add(1);
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  // A key published via max_inserted must always be findable.
  EXPECT_EQ(misses.load(), 0u);
}

TEST(SwSkiplist, InsertFindScan) {
  Arena arena;
  SwSkiplist list(&arena);
  for (uint64_t k = 0; k < 1000; ++k) {
    Record* r = arena.AllocateRecord(8);
    list.Insert(k * 3, r);
  }
  EXPECT_NE(list.Find(30), nullptr);
  EXPECT_EQ(list.Find(31), nullptr);
  std::vector<uint64_t> seen;
  list.Scan(10, 4, [&](uint64_t k, Record*) {
    seen.push_back(k);
    return true;
  });
  EXPECT_EQ(seen, (std::vector<uint64_t>{12, 15, 18, 21}));
}

TEST(SwSkiplist, ConcurrentInserts) {
  Arena arena;
  SwSkiplist list(&arena);
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 10000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      // Interleaved key ranges force adjacent-node contention.
      for (uint64_t i = 0; i < kPerThread; ++i) {
        list.Insert(i * kThreads + t, arena.AllocateRecord(8));
      }
    });
  }
  for (auto& t : pool) t.join();
  uint64_t expect = 0;
  list.Scan(0, kThreads * kPerThread + 10, [&](uint64_t k, Record*) {
    EXPECT_EQ(k, expect);
    ++expect;
    return true;
  });
  EXPECT_EQ(expect, kThreads * kPerThread);
}

TEST(HashIndexBaseline, ConcurrentInsertFind) {
  Arena arena;
  HashIndex index(&arena, 1 << 12);
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 10000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        index.Insert(uint64_t(t) * kPerThread + i, arena.AllocateRecord(8));
      }
    });
  }
  for (auto& t : pool) t.join();
  for (uint64_t k = 0; k < kThreads * kPerThread; ++k) {
    EXPECT_NE(index.Find(k), nullptr) << k;
  }
  EXPECT_EQ(index.Find(1 << 30), nullptr);
}

TEST(SiloTxn, ReadValidationCatchesConcurrentWriter) {
  SiloDb db;
  SiloDb::TableDef def;
  def.payload_len = 8;
  uint32_t t = db.CreateTable(def);
  uint64_t v0 = 100;
  db.Load(t, 1, &v0);

  SiloTxn t1(&db);
  uint64_t buf;
  Record* r = t1.Get(t, 1);
  ASSERT_TRUE(t1.Read(r, &buf));
  EXPECT_EQ(buf, 100u);

  // T2 commits an update between T1's read and T1's commit.
  SiloTxn t2(&db);
  uint64_t buf2;
  ASSERT_TRUE(t2.Read(t2.Get(t, 1), &buf2));
  uint64_t nv = 200;
  t2.Write(t, r, &nv);
  ASSERT_TRUE(t2.Commit());

  // T1 validates its read set and must fail.
  uint64_t nv1 = 300;
  t1.Write(t, r, &nv1);
  EXPECT_FALSE(t1.Commit());
  // The committed value is T2's.
  SiloTxn t3(&db);
  uint64_t buf3;
  ASSERT_TRUE(t3.Read(t3.Get(t, 1), &buf3));
  EXPECT_EQ(buf3, 200u);
}

TEST(SiloTxn, ReadOnlyCommitAlwaysSucceeds) {
  SiloDb db;
  SiloDb::TableDef def;
  def.payload_len = 8;
  uint32_t t = db.CreateTable(def);
  uint64_t v = 5;
  db.Load(t, 9, &v);
  SiloTxn txn(&db);
  uint64_t buf;
  ASSERT_TRUE(txn.Read(txn.Get(t, 9), &buf));
  EXPECT_TRUE(txn.Commit());
}

TEST(SiloTxn, InsertVisibleOnlyAfterCommit) {
  SiloDb db;
  SiloDb::TableDef def;
  def.payload_len = 8;
  uint32_t t = db.CreateTable(def);

  SiloTxn ins(&db);
  uint64_t v = 42;
  Record* r = ins.Insert(t, 7, &v);
  ASSERT_NE(r, nullptr);

  // Uncommitted insert is absent to other transactions.
  SiloTxn peek(&db);
  uint64_t buf;
  Record* pr = peek.Get(t, 7);
  ASSERT_NE(pr, nullptr);  // index entry exists...
  EXPECT_FALSE(peek.Read(pr, &buf));  // ...but the record is absent

  ASSERT_TRUE(ins.Commit());
  SiloTxn after(&db);
  ASSERT_TRUE(after.Read(after.Get(t, 7), &buf));
  EXPECT_EQ(buf, 42u);
}

TEST(SiloTxn, AbandonedInsertClaimableByRetry) {
  SiloDb db;
  SiloDb::TableDef def;
  def.payload_len = 8;
  uint32_t t = db.CreateTable(def);

  {
    SiloTxn attempt1(&db);
    uint64_t v = 1;
    ASSERT_NE(attempt1.Insert(t, 3, &v), nullptr);
    attempt1.Abort();  // leaves an absent record behind
  }
  SiloTxn attempt2(&db);
  uint64_t v = 2;
  ASSERT_NE(attempt2.Insert(t, 3, &v), nullptr);  // claims the absent record
  ASSERT_TRUE(attempt2.Commit());
  SiloTxn check(&db);
  uint64_t buf;
  ASSERT_TRUE(check.Read(check.Get(t, 3), &buf));
  EXPECT_EQ(buf, 2u);
}

TEST(SiloYcsbWorkload, ReadOnlyRuns) {
  SiloYcsbOptions opts;
  opts.records = 10000;
  opts.payload_len = 64;
  SiloYcsb ycsb(opts);
  ycsb.Setup();
  auto result = ycsb.RunPointTxns(/*threads=*/4, /*txns_per_thread=*/2000);
  EXPECT_EQ(result.committed, 8000u);
  EXPECT_EQ(result.aborted, 0u);  // read-only never fails validation
  EXPECT_GT(result.tps, 0.0);
}

TEST(SiloYcsbWorkload, ScansRun) {
  SiloYcsbOptions opts;
  opts.records = 10000;
  opts.payload_len = 64;
  SiloYcsb ycsb(opts);
  ycsb.Setup();
  auto result = ycsb.RunScans(4, 500);
  EXPECT_EQ(result.committed, 2000u);
}

TEST(SiloTpccWorkload, MixConservesMoneyAndCounters) {
  SiloTpccOptions opts;
  opts.warehouses = 2;
  opts.districts_per_warehouse = 2;
  opts.customers_per_district = 50;
  opts.items = 500;
  opts.ol_cnt = 5;
  SiloTpcc tpcc(opts);
  tpcc.Setup();
  auto result = tpcc.RunMix(/*threads=*/4, /*txns_per_thread=*/500);
  EXPECT_EQ(result.committed, 2000u);

  // NewOrder count == total district o_id advancement (they are the only
  // writers of next_o_id).
  uint64_t advanced = 0;
  for (uint32_t w = 0; w < 2; ++w) {
    for (uint32_t d = 0; d < 2; ++d) {
      advanced += tpcc.DistrictNextOid(w, d) - 3001;
    }
  }
  EXPECT_GT(advanced, 0u);
  EXPECT_LE(advanced, result.committed);

  // Every committed order is findable via its computed key.
  for (uint32_t w = 0; w < 2; ++w) {
    for (uint32_t d = 0; d < 2; ++d) {
      uint64_t next = tpcc.DistrictNextOid(w, d);
      for (uint64_t o = 3001; o < next; ++o) {
        SiloTxn txn(&tpcc.db());
        Record* r = txn.Get(5 /*order table id*/, tpcc.OrderKey(w, d, o));
        ASSERT_NE(r, nullptr);
        uint8_t buf[32];
        EXPECT_TRUE(txn.Read(r, buf));
      }
    }
  }
}

}  // namespace
}  // namespace bionicdb::baseline
