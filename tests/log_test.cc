// Durability tests: command logging, checkpointing and replay recovery
// (paper section 4.8 — described there, implemented here).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "host/driver.h"
#include "log/command_log.h"
#include "workload/tpcc.h"
#include "workload/ycsb.h"

namespace bionicdb {
namespace {

class RecoveryTest : public ::testing::Test {
 protected:
  static core::EngineOptions Opts() {
    core::EngineOptions o;
    o.n_workers = 2;
    return o;
  }

  static workload::YcsbOptions YcsbOpts() {
    workload::YcsbOptions o;
    o.mode = workload::YcsbOptions::Mode::kUpdateMix;
    o.records_per_partition = 500;
    o.payload_len = 32;
    o.accesses_per_txn = 4;
    o.updates_per_txn = 2;
    return o;
  }
};

TEST_F(RecoveryTest, ReplayReproducesYcsbState) {
  // --- Run a workload on engine A, logging every command. ---------------
  core::BionicDb a(Opts());
  workload::Ycsb ycsb_a(&a, YcsbOpts());
  ASSERT_TRUE(ycsb_a.Setup().ok());
  log::Checkpoint initial = log::Checkpoint::Capture(a.database());

  log::CommandLog cmd_log(&a);
  Rng rng(11);
  std::vector<std::pair<size_t, sim::Addr>> submitted;
  for (uint32_t w = 0; w < 2; ++w) {
    for (int i = 0; i < 30; ++i) {
      sim::Addr block = ycsb_a.MakeTxn(&rng, w);
      size_t rec = cmd_log.Append(w, block);  // persist BEFORE execution
      a.Submit(w, block);
      submitted.emplace_back(rec, block);
    }
  }
  a.Drain();
  for (const auto& [rec, block] : submitted) cmd_log.MarkOutcome(rec, block);
  log::Checkpoint final_a = log::Checkpoint::Capture(a.database());

  // --- "Crash"; recover into a fresh engine B with the same schema and
  // stored procedures but no population (the checkpoint restores state).
  core::BionicDb b(Opts());
  for (const db::TableSchema& schema : a.database().catalogue().tables()) {
    ASSERT_TRUE(b.database().CreateTable(schema).ok());
  }
  const db::ProcedureInfo* proc =
      a.database().catalogue().FindProcedure(workload::Ycsb::kTxnType);
  ASSERT_NE(proc, nullptr);
  ASSERT_TRUE(b.RegisterProcedure(workload::Ycsb::kTxnType, proc->program,
                                  proc->block_data_size)
                  .ok());

  ASSERT_TRUE(log::Recover(&b, initial, cmd_log).ok());
  log::Checkpoint final_b = log::Checkpoint::Capture(b.database());
  EXPECT_TRUE(final_a.Equivalent(final_b));
}

TEST_F(RecoveryTest, LogAndCheckpointFileRoundTrip) {
  core::BionicDb a(Opts());
  workload::Ycsb ycsb(&a, YcsbOpts());
  ASSERT_TRUE(ycsb.Setup().ok());
  log::CommandLog cmd_log(&a);
  Rng rng(5);
  std::vector<std::pair<size_t, sim::Addr>> submitted;
  for (int i = 0; i < 10; ++i) {
    sim::Addr block = ycsb.MakeTxn(&rng, 0);
    submitted.emplace_back(cmd_log.Append(0, block), block);
    a.Submit(0, block);
  }
  a.Drain();
  for (const auto& [rec, block] : submitted) cmd_log.MarkOutcome(rec, block);

  std::string log_path = testing::TempDir() + "/bionicdb_cmd.log";
  std::string ckpt_path = testing::TempDir() + "/bionicdb.ckpt";
  ASSERT_TRUE(cmd_log.SaveToFile(log_path).ok());
  log::Checkpoint ckpt = log::Checkpoint::Capture(a.database());
  ASSERT_TRUE(ckpt.SaveToFile(ckpt_path).ok());

  log::CommandLog loaded_log(&a);
  ASSERT_TRUE(loaded_log.LoadFromFile(log_path).ok());
  ASSERT_EQ(loaded_log.records().size(), cmd_log.records().size());
  for (size_t i = 0; i < cmd_log.records().size(); ++i) {
    EXPECT_EQ(loaded_log.records()[i].txn_type, cmd_log.records()[i].txn_type);
    EXPECT_EQ(loaded_log.records()[i].committed,
              cmd_log.records()[i].committed);
    EXPECT_EQ(loaded_log.records()[i].commit_ts,
              cmd_log.records()[i].commit_ts);
    EXPECT_EQ(loaded_log.records()[i].input, cmd_log.records()[i].input);
  }

  log::Checkpoint loaded_ckpt;
  ASSERT_TRUE(loaded_ckpt.LoadFromFile(ckpt_path).ok());
  EXPECT_TRUE(loaded_ckpt.Equivalent(ckpt));

  std::remove(log_path.c_str());
  std::remove(ckpt_path.c_str());
}

TEST_F(RecoveryTest, CorruptOrTruncatedFilesAreRejected) {
  core::BionicDb a(Opts());
  workload::Ycsb ycsb(&a, YcsbOpts());
  ASSERT_TRUE(ycsb.Setup().ok());
  log::CommandLog cmd_log(&a);
  Rng rng(8);
  std::vector<std::pair<size_t, sim::Addr>> submitted;
  for (int i = 0; i < 5; ++i) {
    sim::Addr block = ycsb.MakeTxn(&rng, 0);
    submitted.emplace_back(cmd_log.Append(0, block), block);
    a.Submit(0, block);
  }
  a.Drain();
  for (const auto& [rec, block] : submitted) cmd_log.MarkOutcome(rec, block);

  std::string log_path = testing::TempDir() + "/bionicdb_corrupt.log";
  std::string ckpt_path = testing::TempDir() + "/bionicdb_corrupt.ckpt";
  ASSERT_TRUE(cmd_log.SaveToFile(log_path).ok());
  log::Checkpoint ckpt = log::Checkpoint::Capture(a.database());
  ASSERT_TRUE(ckpt.SaveToFile(ckpt_path).ok());

  auto read_all = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::vector<char>((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  };
  auto write_all = [](const std::string& path, const std::vector<char>& b) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(b.data(), std::streamsize(b.size()));
  };
  std::vector<char> log_bytes = read_all(log_path);
  std::vector<char> ckpt_bytes = read_all(ckpt_path);
  ASSERT_GT(log_bytes.size(), 32u);

  // Seed the loading log with real records first: a failed load must leave
  // them untouched (no partially-applied state).
  log::CommandLog loaded(&a);
  ASSERT_TRUE(loaded.LoadFromFile(log_path).ok());
  const size_t n_records = loaded.records().size();
  ASSERT_GT(n_records, 0u);

  // A flipped byte in the body breaks the CRC32 trailer.
  std::vector<char> flipped = log_bytes;
  flipped[flipped.size() / 2] = char(flipped[flipped.size() / 2] ^ 0x40);
  write_all(log_path, flipped);
  Status s = loaded.LoadFromFile(log_path);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("checksum"), std::string::npos)
      << s.ToString();
  EXPECT_EQ(loaded.records().size(), n_records);

  // A truncated file cannot satisfy the trailer either.
  std::vector<char> truncated(log_bytes.begin(),
                              log_bytes.begin() + long(log_bytes.size()) / 2);
  write_all(log_path, truncated);
  EXPECT_FALSE(loaded.LoadFromFile(log_path).ok());
  EXPECT_EQ(loaded.records().size(), n_records);

  // Wrong magic (a checkpoint is not a command log and vice versa).
  write_all(log_path, ckpt_bytes);
  EXPECT_FALSE(loaded.LoadFromFile(log_path).ok());
  log::Checkpoint loaded_ckpt;
  write_all(ckpt_path, flipped);
  EXPECT_FALSE(loaded_ckpt.LoadFromFile(ckpt_path).ok());

  // A missing file reports cleanly too.
  EXPECT_FALSE(loaded.LoadFromFile(log_path + ".missing").ok());

  std::remove(log_path.c_str());
  std::remove(ckpt_path.c_str());
}

TEST_F(RecoveryTest, ReplayIsDeterministic) {
  core::BionicDb a(Opts());
  workload::Ycsb ycsb(&a, YcsbOpts());
  ASSERT_TRUE(ycsb.Setup().ok());
  log::Checkpoint initial = log::Checkpoint::Capture(a.database());
  log::CommandLog cmd_log(&a);
  Rng rng(15);
  std::vector<std::pair<size_t, sim::Addr>> submitted;
  for (uint32_t w = 0; w < 2; ++w) {
    for (int i = 0; i < 20; ++i) {
      sim::Addr block = ycsb.MakeTxn(&rng, w);
      submitted.emplace_back(cmd_log.Append(w, block), block);
      a.Submit(w, block);
    }
  }
  a.Drain();
  for (const auto& [rec, block] : submitted) cmd_log.MarkOutcome(rec, block);

  // Recovering twice from the same checkpoint + log must reproduce the
  // same state both times (replay has no hidden nondeterminism).
  auto recover_once = [&] {
    core::BionicDb b(Opts());
    for (const db::TableSchema& schema : a.database().catalogue().tables()) {
      EXPECT_TRUE(b.database().CreateTable(schema).ok());
    }
    const db::ProcedureInfo* proc =
        a.database().catalogue().FindProcedure(workload::Ycsb::kTxnType);
    EXPECT_NE(proc, nullptr);
    EXPECT_TRUE(b.RegisterProcedure(workload::Ycsb::kTxnType, proc->program,
                                    proc->block_data_size)
                    .ok());
    EXPECT_TRUE(log::Recover(&b, initial, cmd_log).ok());
    return log::Checkpoint::Capture(b.database());
  };
  log::Checkpoint first = recover_once();
  log::Checkpoint second = recover_once();
  EXPECT_TRUE(first.Equivalent(second));
  EXPECT_TRUE(first.Equivalent(log::Checkpoint::Capture(a.database())));
}

TEST_F(RecoveryTest, ReplayOrderSortsByCommitTimestamp) {
  core::BionicDb a(Opts());
  workload::Ycsb ycsb(&a, YcsbOpts());
  ASSERT_TRUE(ycsb.Setup().ok());
  log::CommandLog cmd_log(&a);
  Rng rng(6);
  std::vector<std::pair<size_t, sim::Addr>> submitted;
  for (uint32_t w = 0; w < 2; ++w) {
    for (int i = 0; i < 10; ++i) {
      sim::Addr block = ycsb.MakeTxn(&rng, w);
      submitted.emplace_back(cmd_log.Append(w, block), block);
      a.Submit(w, block);
    }
  }
  a.Drain();
  for (const auto& [rec, block] : submitted) cmd_log.MarkOutcome(rec, block);
  auto order = cmd_log.ReplayOrder();
  ASSERT_FALSE(order.empty());
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_LE(order[i - 1]->commit_ts, order[i]->commit_ts);
  }
  for (const log::LogRecord* r : order) EXPECT_TRUE(r->committed);
}

TEST_F(RecoveryTest, TpccRecoveryPreservesConservation) {
  core::EngineOptions opts = Opts();
  opts.softcore.max_contexts = 4;
  core::BionicDb a(opts);
  workload::Tpcc tpcc_a(&a, workload::TpccTestOptions());
  ASSERT_TRUE(tpcc_a.Setup().ok());
  log::Checkpoint initial = log::Checkpoint::Capture(a.database());

  log::CommandLog cmd_log(&a);
  Rng rng(13);
  host::TxnList txns;
  std::vector<std::pair<size_t, sim::Addr>> submitted;
  for (uint32_t w = 0; w < 2; ++w) {
    for (int i = 0; i < 10; ++i) {
      sim::Addr block = tpcc_a.MakeMixed(&rng, w);
      submitted.emplace_back(cmd_log.Append(w, block), block);
      txns.emplace_back(w, block);
    }
  }
  auto result = host::RunToCompletion(&a, txns);
  ASSERT_EQ(result.failed, 0u);
  for (const auto& [rec, block] : submitted) cmd_log.MarkOutcome(rec, block);
  log::Checkpoint final_a = log::Checkpoint::Capture(a.database());

  core::BionicDb b(opts);
  workload::Tpcc tpcc_b(&b, workload::TpccTestOptions());
  // Recreate schema + procedures without population: copy the programs
  // from A's catalogue after creating the tables with zero rows.
  for (const db::TableSchema& schema : a.database().catalogue().tables()) {
    ASSERT_TRUE(b.database().CreateTable(schema).ok());
  }
  for (db::TxnTypeId type :
       {workload::Tpcc::kNewOrderTxn, workload::Tpcc::kPaymentTxn}) {
    const db::ProcedureInfo* proc = a.database().catalogue().FindProcedure(type);
    ASSERT_NE(proc, nullptr);
    ASSERT_TRUE(
        b.RegisterProcedure(type, proc->program, proc->block_data_size).ok());
  }
  ASSERT_TRUE(log::Recover(&b, initial, cmd_log).ok());
  EXPECT_TRUE(final_a.Equivalent(log::Checkpoint::Capture(b.database())));
}

}  // namespace
}  // namespace bionicdb
