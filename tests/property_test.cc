// Property-based (parameterized) test sweeps.
//
// Each suite states an invariant of the system and checks it across a grid
// of configurations — worker counts, execution modes, timing parameters,
// hazard pressure, seeds. TEST_P/INSTANTIATE_TEST_SUITE_P per the project
// testing conventions.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "common/random.h"
#include "db/tuple.h"
#include "host/driver.h"
#include "index/coprocessor.h"
#include "log/command_log.h"
#include "sim/simulator.h"
#include "workload/ycsb.h"

namespace bionicdb {
namespace {

// ---------------------------------------------------------------------------
// Invariant 1: with hazard prevention on, EVERY pipelined insert survives,
// across bucket pressure, op counts and pipeline pool sizes (Fig. 6's bug
// can never occur).
// ---------------------------------------------------------------------------

using HazardParams = std::tuple<uint32_t /*buckets*/, uint32_t /*ops*/,
                                uint32_t /*pool*/>;

class HashInsertSurvival : public ::testing::TestWithParam<HazardParams> {};

TEST_P(HashInsertSurvival, AllInsertsSurvive) {
  auto [buckets, n_ops, pool] = GetParam();
  sim::Simulator sim(sim::TimingConfig{});
  db::Database database(&sim.dram(), 1);
  db::TableSchema schema;
  schema.id = 0;
  schema.key_len = 8;
  schema.payload_len = 8;
  schema.hash_buckets = buckets;
  ASSERT_TRUE(database.CreateTable(schema).ok());
  index::IndexCoprocessor::Config cfg;
  cfg.max_inflight = 24;
  cfg.hash.pool_size = pool;
  index::IndexCoprocessor coproc(&database, 0, cfg);
  sim.AddComponent(&coproc);

  sim::Addr scratch = sim.dram().Allocate(16 * n_ops);
  std::vector<comm::Envelope> ops;
  for (uint32_t i = 0; i < n_ops; ++i) {
    uint8_t kb[8];
    db::EncodeKeyU64(1000 + i, kb);
    sim.dram().WriteBytes(scratch + 16 * i, kb, 8);
    sim.dram().Write64(scratch + 16 * i + 8, i);
    comm::IndexOp op;
    op.op = isa::Opcode::kInsert;
    op.table = 0;
    op.ts = 1;
    op.key_addr = scratch + 16 * i;
    op.key_len = 8;
    op.payload_src = scratch + 16 * i + 8;
    op.payload_len = 8;
    comm::Header h;
    h.cp_index = i;
    ops.push_back(comm::Envelope(h, op));
  }
  size_t next = 0, done = 0;
  ASSERT_TRUE(sim.RunUntil(
      [&] {
        while (next < ops.size() && coproc.Submit(ops[next])) ++next;
        while (!coproc.results().empty()) {
          EXPECT_EQ(coproc.results().front().index_result().status,
                    isa::CpStatus::kOk);
          coproc.results().pop_front();
          ++done;
        }
        return done == ops.size();
      },
      2'000'000));
  for (uint32_t i = 0; i < n_ops; ++i) {
    EXPECT_NE(database.FindU64(0, 0, 1000 + i), sim::kNullAddr) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    BucketPressure, HashInsertSurvival,
    ::testing::Combine(::testing::Values(1u, 2u, 16u, 1024u),
                       ::testing::Values(8u, 24u),
                       ::testing::Values(8u, 16u)));

// ---------------------------------------------------------------------------
// Invariant 2: skiplist structural invariants hold after any interleaving
// of pipelined inserts, across seeds and key patterns.
// ---------------------------------------------------------------------------

using SkiplistParams = std::tuple<uint64_t /*seed*/, bool /*clustered*/>;

class SkiplistIntegrity : public ::testing::TestWithParam<SkiplistParams> {};

TEST_P(SkiplistIntegrity, InvariantsAfterConcurrentInserts) {
  auto [seed, clustered] = GetParam();
  sim::Simulator sim(sim::TimingConfig{});
  db::Database database(&sim.dram(), 1);
  db::TableSchema schema;
  schema.id = 0;
  schema.key_len = 8;
  schema.payload_len = 8;
  schema.index = db::IndexKind::kSkiplist;
  ASSERT_TRUE(database.CreateTable(schema).ok());
  index::IndexCoprocessor::Config cfg;
  cfg.max_inflight = 24;
  index::IndexCoprocessor coproc(&database, 0, cfg);
  sim.AddComponent(&coproc);

  Rng rng(seed);
  constexpr uint32_t kOps = 48;
  sim::Addr scratch = sim.dram().Allocate(16 * kOps);
  std::vector<comm::Envelope> ops;
  std::vector<uint64_t> keys;
  for (uint32_t i = 0; i < kOps; ++i) {
    // Clustered keys maximise shared insert paths (hazard pressure).
    uint64_t key = clustered ? 5000 + i : rng.Next() % 100000;
    if (std::find(keys.begin(), keys.end(), key) != keys.end()) {
      key = 200000 + i;
    }
    keys.push_back(key);
    uint8_t kb[8];
    db::EncodeKeyU64(key, kb);
    sim.dram().WriteBytes(scratch + 16 * i, kb, 8);
    comm::IndexOp op;
    op.op = isa::Opcode::kInsert;
    op.table = 0;
    op.ts = 1;
    op.key_addr = scratch + 16 * i;
    op.key_len = 8;
    op.payload_src = scratch + 16 * i + 8;
    op.payload_len = 8;
    comm::Header h;
    h.cp_index = i;
    ops.push_back(comm::Envelope(h, op));
  }
  size_t next = 0, done = 0;
  ASSERT_TRUE(sim.RunUntil(
      [&] {
        while (next < ops.size() && coproc.Submit(ops[next])) ++next;
        while (!coproc.results().empty()) {
          coproc.results().pop_front();
          ++done;
        }
        return done == ops.size();
      },
      4'000'000));
  EXPECT_TRUE(database.skiplist_index(0, 0)->CheckInvariants());
  for (uint64_t key : keys) {
    EXPECT_NE(database.FindU64(0, 0, key), sim::kNullAddr) << key;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndPatterns, SkiplistIntegrity,
    ::testing::Combine(::testing::Values(1u, 7u, 13u, 99u),
                       ::testing::Bool()));

// ---------------------------------------------------------------------------
// Invariant 3: after the engine quiesces, no tuple anywhere is dirty (every
// transaction either published or rolled back its marks), and every
// submitted transaction eventually commits under client retry. Swept over
// worker counts, execution mode and workload shape.
// ---------------------------------------------------------------------------

using EngineParams =
    std::tuple<uint32_t /*workers*/, bool /*interleaving*/,
               workload::YcsbOptions::Mode>;

class EngineQuiescence : public ::testing::TestWithParam<EngineParams> {};

TEST_P(EngineQuiescence, NoDirtyTuplesAndAllCommit) {
  auto [workers, interleaving, mode] = GetParam();
  core::EngineOptions opts;
  opts.n_workers = workers;
  opts.softcore.interleaving = interleaving;
  core::BionicDb engine(opts);
  workload::YcsbOptions yopts;
  yopts.mode = mode;
  yopts.records_per_partition = 500;
  yopts.payload_len = 32;
  yopts.accesses_per_txn = 6;
  yopts.updates_per_txn = 3;
  yopts.scan_len = 10;
  workload::Ycsb ycsb(&engine, yopts);
  ASSERT_TRUE(ycsb.Setup().ok());

  Rng rng(workers * 31 + interleaving);
  host::TxnList txns;
  for (uint32_t w = 0; w < workers; ++w) {
    for (int i = 0; i < 30; ++i) txns.emplace_back(w, ycsb.MakeTxn(&rng, w));
  }
  auto result = host::RunToCompletion(&engine, txns);
  EXPECT_EQ(result.failed, 0u);
  EXPECT_EQ(result.committed, txns.size());

  // Global quiescence invariant.
  for (uint32_t p = 0; p < workers; ++p) {
    auto check = [](db::TupleAccessor t) {
      EXPECT_FALSE(t.dirty());
      return true;
    };
    if (mode == workload::YcsbOptions::Mode::kScanOnly) {
      engine.database().skiplist_index(workload::Ycsb::kTable, p)->ForEach(
          check);
    } else {
      engine.database().hash_index(workload::Ycsb::kTable, p)->ForEach(check);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndWorkers, EngineQuiescence,
    ::testing::Combine(
        ::testing::Values(1u, 2u, 4u), ::testing::Bool(),
        ::testing::Values(workload::YcsbOptions::Mode::kReadOnly,
                          workload::YcsbOptions::Mode::kUpdateMix,
                          workload::YcsbOptions::Mode::kScanOnly,
                          workload::YcsbOptions::Mode::kMultisite)));

// ---------------------------------------------------------------------------
// Invariant 4: recovery reproduces the pre-crash state for any seed.
// ---------------------------------------------------------------------------

class RecoveryEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RecoveryEquivalence, ReplayMatchesForAnySeed) {
  core::EngineOptions opts;
  opts.n_workers = 2;
  core::BionicDb a(opts);
  workload::YcsbOptions yopts;
  yopts.mode = workload::YcsbOptions::Mode::kUpdateMix;
  yopts.records_per_partition = 300;
  yopts.payload_len = 32;
  yopts.accesses_per_txn = 4;
  yopts.updates_per_txn = 2;
  workload::Ycsb ycsb(&a, yopts);
  ASSERT_TRUE(ycsb.Setup().ok());
  log::Checkpoint initial = log::Checkpoint::Capture(a.database());
  log::CommandLog cmd_log(&a);
  Rng rng(GetParam());
  std::vector<std::pair<size_t, sim::Addr>> submitted;
  for (uint32_t w = 0; w < 2; ++w) {
    for (int i = 0; i < 20; ++i) {
      sim::Addr block = ycsb.MakeTxn(&rng, w);
      submitted.emplace_back(cmd_log.Append(w, block), block);
      a.Submit(w, block);
    }
  }
  a.Drain();
  for (auto& [rec, block] : submitted) cmd_log.MarkOutcome(rec, block);

  core::BionicDb b(opts);
  for (const db::TableSchema& schema : a.database().catalogue().tables()) {
    ASSERT_TRUE(b.database().CreateTable(schema).ok());
  }
  const db::ProcedureInfo* proc =
      a.database().catalogue().FindProcedure(workload::Ycsb::kTxnType);
  ASSERT_TRUE(b.RegisterProcedure(workload::Ycsb::kTxnType, proc->program,
                                  proc->block_data_size)
                  .ok());
  ASSERT_TRUE(log::Recover(&b, initial, cmd_log).ok());
  EXPECT_TRUE(log::Checkpoint::Capture(a.database())
                  .Equivalent(log::Checkpoint::Capture(b.database())));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecoveryEquivalence,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

// ---------------------------------------------------------------------------
// Invariant 5: correctness is timing-independent — DRAM latency and channel
// count change performance, never results.
// ---------------------------------------------------------------------------

using TimingParams = std::tuple<uint32_t /*latency*/, uint32_t /*channels*/>;

class TimingIndependence : public ::testing::TestWithParam<TimingParams> {};

TEST_P(TimingIndependence, ResultsUnchangedAcrossTimings) {
  auto [latency, channels] = GetParam();
  core::EngineOptions opts;
  opts.n_workers = 2;
  opts.timing.dram_latency_cycles = latency;
  opts.timing.dram_channels = channels;
  core::BionicDb engine(opts);
  workload::YcsbOptions yopts;
  yopts.mode = workload::YcsbOptions::Mode::kUpdateMix;
  yopts.records_per_partition = 200;
  yopts.payload_len = 32;
  yopts.accesses_per_txn = 4;
  yopts.updates_per_txn = 2;
  workload::Ycsb ycsb(&engine, yopts);
  ASSERT_TRUE(ycsb.Setup().ok());
  Rng rng(42);
  host::TxnList txns;
  for (uint32_t w = 0; w < 2; ++w) {
    for (int i = 0; i < 25; ++i) txns.emplace_back(w, ycsb.MakeTxn(&rng, w));
  }
  auto result = host::RunToCompletion(&engine, txns);
  EXPECT_EQ(result.failed, 0u);
  EXPECT_EQ(result.committed, 50u);
  EXPECT_GT(result.cycles, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    LatencyChannels, TimingIndependence,
    ::testing::Combine(::testing::Values(5u, 25u, 95u, 250u),
                       ::testing::Values(1u, 2u, 8u)));

}  // namespace
}  // namespace bionicdb
