// Unit tests for the index coprocessor pipelines, driven directly by the
// cycle simulator (no softcore): correctness of each operation, the
// in-flight cap, and — crucially — the pipeline hazards of Figures 6/7,
// shown to corrupt the structures when prevention is disabled and to be
// fully suppressed when enabled.
#include <gtest/gtest.h>

#include <algorithm>

#include "db/database.h"
#include "db/tuple.h"
#include "index/coprocessor.h"
#include "sim/simulator.h"

namespace bionicdb::index {
namespace {

class IndexPipelineTest : public ::testing::Test {
 protected:
  void Init(db::IndexKind kind, uint32_t hash_buckets = 1 << 10,
            bool hazard_prevention = true, uint32_t max_inflight = 16,
            uint32_t n_scanners = 1) {
    sim_ = std::make_unique<sim::Simulator>(sim::TimingConfig());
    db_ = std::make_unique<db::Database>(&sim_->dram(), 1);
    db::TableSchema schema;
    schema.id = 0;
    schema.index = kind;
    schema.key_len = 8;
    schema.payload_len = 8;
    schema.hash_buckets = hash_buckets;
    ASSERT_TRUE(db_->CreateTable(schema).ok());
    IndexCoprocessor::Config cfg;
    cfg.max_inflight = max_inflight;
    cfg.hash.hazard_prevention = hazard_prevention;
    cfg.skiplist.hazard_prevention = hazard_prevention;
    cfg.skiplist.n_scanners = n_scanners;
    coproc_ = std::make_unique<IndexCoprocessor>(db_.get(), 0, cfg);
    sim_->AddComponent(coproc_.get());
    // A scratch area holding keys/payloads the ops reference.
    scratch_ = sim_->dram().Allocate(1 << 20);
    scratch_used_ = 0;
  }

  sim::Addr PutKey(uint64_t key) {
    uint8_t kb[8];
    db::EncodeKeyU64(key, kb);
    sim::Addr a = scratch_ + scratch_used_;
    scratch_used_ += 8;
    sim_->dram().WriteBytes(a, kb, 8);
    return a;
  }
  sim::Addr PutU64(uint64_t v) {
    sim::Addr a = scratch_ + scratch_used_;
    scratch_used_ += 8;
    sim_->dram().Write64(a, v);
    return a;
  }

  comm::Envelope MakeOp(isa::Opcode op, uint64_t key, uint32_t cp) {
    comm::IndexOp o;
    o.op = op;
    o.table = 0;
    o.ts = 1000;
    o.key_addr = PutKey(key);
    o.key_len = 8;
    comm::Header h;
    h.cp_index = cp;
    return comm::Envelope(h, o);
  }

  /// Submits (retrying on cap) and runs until all results arrive.
  std::vector<comm::Envelope> RunOps(std::vector<comm::Envelope> ops) {
    size_t next = 0;
    std::vector<comm::Envelope> results;
    sim_->RunUntil(
        [&] {
          while (next < ops.size() && coproc_->Submit(ops[next])) ++next;
          auto& q = coproc_->results();
          while (!q.empty()) {
            results.push_back(q.front());
            q.pop_front();
          }
          return results.size() == ops.size();
        },
        /*max_cycles=*/1'000'000);
    return results;
  }

  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<db::Database> db_;
  std::unique_ptr<IndexCoprocessor> coproc_;
  sim::Addr scratch_ = 0;
  uint64_t scratch_used_ = 0;
};

TEST_F(IndexPipelineTest, HashSearchHitAndMiss) {
  Init(db::IndexKind::kHash);
  uint64_t payload = 77;
  ASSERT_TRUE(db_->LoadU64(0, 0, 5, &payload, 8).ok());
  auto results = RunOps({MakeOp(isa::Opcode::kSearch, 5, 0),
                         MakeOp(isa::Opcode::kSearch, 6, 1)});
  ASSERT_EQ(results.size(), 2u);
  // Results may complete out of submission order; identify by cp_index.
  for (const auto& r : results) {
    if (r.hdr.cp_index == 0) {
      EXPECT_EQ(r.index_result().status, isa::CpStatus::kOk);
      uint64_t got;
      sim_->dram().ReadBytes(r.index_result().payload, &got, 8);
      EXPECT_EQ(got, 77u);
    } else {
      EXPECT_EQ(r.index_result().status, isa::CpStatus::kNotFound);
    }
  }
}

TEST_F(IndexPipelineTest, HashSearchTakesAtLeastThreeMemoryTrips) {
  Init(db::IndexKind::kHash);
  uint64_t payload = 1;
  ASSERT_TRUE(db_->LoadU64(0, 0, 9, &payload, 8).ok());
  uint64_t start = sim_->now();
  RunOps({MakeOp(isa::Opcode::kSearch, 9, 0)});
  uint64_t elapsed = sim_->now() - start;
  // Key fetch + bucket head + node read, each a full DRAM latency.
  EXPECT_GE(elapsed, 3ull * sim_->config().dram_latency_cycles);
}

TEST_F(IndexPipelineTest, HashInsertInstallsDirtyTuple) {
  Init(db::IndexKind::kHash);
  comm::Envelope op = MakeOp(isa::Opcode::kInsert, 42, 0);
  op.index_op().payload_src = PutU64(4242);
  op.index_op().payload_len = 8;
  auto results = RunOps({op});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].index_result().status, isa::CpStatus::kOk);
  EXPECT_EQ(results[0].index_result().write_kind, cc::WriteKind::kInsert);
  sim::Addr t = db_->FindU64(0, 0, 42);
  ASSERT_NE(t, sim::kNullAddr);
  db::TupleAccessor acc(&sim_->dram(), t);
  EXPECT_TRUE(acc.dirty());  // born dirty; COMMIT publishes
  uint64_t got;
  sim_->dram().ReadBytes(acc.payload_addr(), &got, 8);
  EXPECT_EQ(got, 4242u);
}

TEST_F(IndexPipelineTest, HashUpdateAndRemoveSetMarks) {
  Init(db::IndexKind::kHash);
  uint64_t payload = 1;
  ASSERT_TRUE(db_->LoadU64(0, 0, 7, &payload, 8).ok());
  ASSERT_TRUE(db_->LoadU64(0, 0, 8, &payload, 8).ok());
  auto results = RunOps({MakeOp(isa::Opcode::kUpdate, 7, 0),
                         MakeOp(isa::Opcode::kRemove, 8, 1)});
  ASSERT_EQ(results.size(), 2u);
  db::TupleAccessor upd(&sim_->dram(), db_->FindU64(0, 0, 7));
  EXPECT_TRUE(upd.dirty());
  EXPECT_FALSE(upd.tombstone());
  db::TupleAccessor rem(&sim_->dram(), db_->FindU64(0, 0, 8));
  EXPECT_TRUE(rem.dirty());
  EXPECT_TRUE(rem.tombstone());
}

TEST_F(IndexPipelineTest, VisibilityRejectionFlowsToResult) {
  Init(db::IndexKind::kHash);
  uint64_t payload = 1;
  ASSERT_TRUE(db_->LoadU64(0, 0, 7, &payload, 8).ok());
  // First update dirties the tuple; the second (other txn) must be
  // rejected by the blind dirty check.
  auto r1 = RunOps({MakeOp(isa::Opcode::kUpdate, 7, 0)});
  EXPECT_EQ(r1[0].index_result().status, isa::CpStatus::kOk);
  auto r2 = RunOps({MakeOp(isa::Opcode::kSearch, 7, 1)});
  EXPECT_EQ(r2[0].index_result().status, isa::CpStatus::kRejected);
}

TEST_F(IndexPipelineTest, InflightCapRejectsSubmit) {
  Init(db::IndexKind::kHash, 1 << 10, true, /*max_inflight=*/2);
  ASSERT_TRUE(coproc_->Submit(MakeOp(isa::Opcode::kSearch, 1, 0)));
  ASSERT_TRUE(coproc_->Submit(MakeOp(isa::Opcode::kSearch, 2, 1)));
  EXPECT_FALSE(coproc_->Submit(MakeOp(isa::Opcode::kSearch, 3, 2)));
  EXPECT_EQ(coproc_->inflight(), 2u);
  sim_->RunUntilIdle(100000);
  EXPECT_TRUE(coproc_->Submit(MakeOp(isa::Opcode::kSearch, 3, 2)));
  sim_->RunUntilIdle(100000);
}

// The Fig. 6 hazard experiment: racing inserts into ONE bucket.
TEST_F(IndexPipelineTest, InsertHazardPreventedByLockTable) {
  Init(db::IndexKind::kHash, /*hash_buckets=*/1, /*hazard_prevention=*/true);
  std::vector<comm::Envelope> ops;
  constexpr int kN = 16;
  for (int i = 0; i < kN; ++i) {
    comm::Envelope op = MakeOp(isa::Opcode::kInsert, 100 + i, uint32_t(i));
    op.index_op().payload_src = PutU64(i);
    op.index_op().payload_len = 8;
    ops.push_back(op);
  }
  auto results = RunOps(ops);
  ASSERT_EQ(results.size(), size_t(kN));
  // With pipeline-stall prevention every insert survives in the chain.
  EXPECT_EQ(db_->hash_index(0, 0)->ChainLength(0), uint32_t(kN));
  for (int i = 0; i < kN; ++i) {
    EXPECT_NE(db_->FindU64(0, 0, 100 + i), sim::kNullAddr) << i;
  }
  EXPECT_GT(coproc_->hash_pipeline().counters().Get("hash_lock_stall_cycles"),
            0u);
}

TEST_F(IndexPipelineTest, InsertHazardManifestsWithoutPrevention) {
  Init(db::IndexKind::kHash, /*hash_buckets=*/1, /*hazard_prevention=*/false);
  std::vector<comm::Envelope> ops;
  constexpr int kN = 16;
  for (int i = 0; i < kN; ++i) {
    comm::Envelope op = MakeOp(isa::Opcode::kInsert, 100 + i, uint32_t(i));
    op.index_op().payload_src = PutU64(i);
    op.index_op().payload_len = 8;
    ops.push_back(op);
  }
  RunOps(ops);
  // Racing inserts read stale bucket heads and overwrite each other: the
  // insert-after-insert hazard loses tuples (paper Fig. 6a).
  EXPECT_LT(db_->hash_index(0, 0)->ChainLength(0), uint32_t(kN));
}

TEST_F(IndexPipelineTest, SkiplistSearchInsertScan) {
  Init(db::IndexKind::kSkiplist);
  uint64_t payload = 5;
  for (uint64_t k = 0; k < 50; ++k) {
    ASSERT_TRUE(db_->LoadU64(0, 0, k * 2, &payload, 8).ok());
  }
  // Point hits and misses.
  auto r = RunOps({MakeOp(isa::Opcode::kSearch, 20, 0),
                   MakeOp(isa::Opcode::kSearch, 21, 1)});
  for (const auto& res : r) {
    if (res.hdr.cp_index == 0) {
      EXPECT_EQ(res.index_result().status, isa::CpStatus::kOk);
    }
    if (res.hdr.cp_index == 1) {
      EXPECT_EQ(res.index_result().status, isa::CpStatus::kNotFound);
    }
  }
  // Pipeline insert, then scan across it.
  comm::Envelope ins = MakeOp(isa::Opcode::kInsert, 21, 2);
  ins.index_op().payload_src = PutU64(2121);
  ins.index_op().payload_len = 8;
  auto ri = RunOps({ins});
  EXPECT_EQ(ri[0].index_result().status, isa::CpStatus::kOk);
  ASSERT_TRUE(db_->skiplist_index(0, 0)->CheckInvariants());

  comm::Envelope scan = MakeOp(isa::Opcode::kScan, 10, 3);
  scan.index_op().scan_count = 5;
  scan.index_op().out_buf = scratch_ + (1 << 16);
  auto rs = RunOps({scan});
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_EQ(rs[0].index_result().status, isa::CpStatus::kOk);
  // The in-flight insert of key 21 is dirty -> invisible to the scan; the
  // five results are 10,12,14,16,18.
  EXPECT_EQ(rs[0].index_result().payload, 5u);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 5; ++i) {
    sim::Addr payload_addr =
        sim_->dram().Read64(scan.index_op().out_buf + 8 * i);
    // Recover the tuple key: payload sits right after the key in memory.
    uint64_t got;
    sim_->dram().ReadBytes(payload_addr, &got, 8);
    EXPECT_EQ(got, 5u);  // preloaded payload value
    (void)keys;
  }
}

// The Fig. 7 hazard experiment: racing skiplist inserts on adjacent keys.
TEST_F(IndexPipelineTest, SkiplistInsertHazardPrevented) {
  Init(db::IndexKind::kSkiplist, 0, /*hazard_prevention=*/true);
  std::vector<comm::Envelope> ops;
  constexpr int kN = 24;
  for (int i = 0; i < kN; ++i) {
    comm::Envelope op = MakeOp(isa::Opcode::kInsert, 1000 + i, uint32_t(i));
    op.index_op().payload_src = PutU64(i);
    op.index_op().payload_len = 8;
    ops.push_back(op);
  }
  auto results = RunOps(ops);
  ASSERT_EQ(results.size(), size_t(kN));
  EXPECT_TRUE(db_->skiplist_index(0, 0)->CheckInvariants());
  for (int i = 0; i < kN; ++i) {
    EXPECT_NE(db_->FindU64(0, 0, 1000 + i), sim::kNullAddr) << i;
  }
}

// The shortest-queue dispatcher breaks ties round-robin, and the rotation
// must advance exactly when the tie-break decided the pick: scans arriving
// at equal (usually empty) queues then spread across every scanner instead
// of piling onto scanner 0.
TEST_F(IndexPipelineTest, ScanDispatchSpreadsAcrossScanners) {
  constexpr uint32_t kScanners = 4;
  Init(db::IndexKind::kSkiplist, /*hash_buckets=*/0,
       /*hazard_prevention=*/true, /*max_inflight=*/16, kScanners);
  uint64_t payload = 7;
  for (uint64_t k = 0; k < 200; ++k) {
    ASSERT_TRUE(db_->LoadU64(0, 0, k, &payload, 8).ok());
  }
  constexpr int kScans = 32;
  std::vector<comm::Envelope> ops;
  for (int i = 0; i < kScans; ++i) {
    comm::Envelope scan = MakeOp(isa::Opcode::kScan, uint64_t(i * 4),
                                 uint32_t(i));
    scan.index_op().scan_count = 4;
    scan.index_op().out_buf = scratch_ + (1 << 16) + uint64_t(i) * 64;
    ops.push_back(scan);
  }
  auto results = RunOps(ops);
  ASSERT_EQ(results.size(), size_t(kScans));
  for (const auto& r : results) {
    EXPECT_EQ(r.index_result().status, isa::CpStatus::kOk);
  }
  auto& pipe = coproc_->skiplist_pipeline();
  uint64_t total = 0, min_d = UINT64_MAX, max_d = 0;
  for (uint32_t s = 0; s < kScanners; ++s) {
    uint64_t d = pipe.ScannerDispatched(s);
    total += d;
    min_d = std::min(min_d, d);
    max_d = std::max(max_d, d);
  }
  EXPECT_EQ(total, uint64_t(kScans));
  // Every scanner must take a fair share: no starvation, and no scanner
  // hoarding more than twice its proportional load.
  EXPECT_GE(min_d, uint64_t(kScans) / (2 * kScanners));
  EXPECT_LE(max_d, uint64_t(2 * kScans) / kScanners);
}

TEST_F(IndexPipelineTest, SkiplistStageRangesCoverAllLevels) {
  Init(db::IndexKind::kSkiplist);
  auto& pipe = coproc_->skiplist_pipeline();
  int expected_hi = db::kSkiplistMaxHeight - 1;
  for (uint32_t s = 0; s < 8; ++s) {
    auto [lo, hi] = pipe.StageRange(s);
    EXPECT_EQ(hi, expected_hi);
    EXPECT_LE(lo, hi);
    expected_hi = lo - 1;
  }
  EXPECT_EQ(expected_hi, -1);
  // Top stage covers the widest range (sparser levels).
  auto [lo0, hi0] = pipe.StageRange(0);
  auto [lo7, hi7] = pipe.StageRange(7);
  EXPECT_GE(hi0 - lo0, hi7 - lo7);
}

}  // namespace
}  // namespace bionicdb::index
