// Fault-injection subsystem tests (src/fault): determinism of the seeded
// schedule, detection guarantees for corrupted tuples, delivery guarantees
// under lossy channels, worker freezes, and crash + replay verification.
#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "fault/fault.h"
#include "fault/recovery.h"
#include "host/driver.h"
#include "log/command_log.h"
#include "workload/ycsb.h"

namespace bionicdb {
namespace {

core::EngineOptions Opts() {
  core::EngineOptions o;
  o.n_workers = 2;
  return o;
}

workload::YcsbOptions YcsbOpts() {
  workload::YcsbOptions o;
  o.mode = workload::YcsbOptions::Mode::kUpdateMix;
  o.records_per_partition = 200;
  o.payload_len = 32;
  o.accesses_per_txn = 4;
  o.updates_per_txn = 2;
  return o;
}

host::RunResult RunBatch(core::BionicDb* engine, workload::Ycsb* ycsb,
                         uint64_t seed, uint64_t txns_per_worker,
                         bool retry_aborts = true) {
  Rng rng(seed);
  host::TxnList txns;
  for (uint32_t w = 0; w < engine->options().n_workers; ++w) {
    for (uint64_t i = 0; i < txns_per_worker; ++i) {
      txns.emplace_back(w, ycsb->MakeTxn(&rng, w));
    }
  }
  return host::RunToCompletion(engine, txns, retry_aborts);
}

TEST(FaultScheduler, ZeroRateSchedulerIsInvisible) {
  core::BionicDb plain(Opts());
  workload::Ycsb ycsb_plain(&plain, YcsbOpts());
  ASSERT_TRUE(ycsb_plain.Setup().ok());
  host::RunResult base = RunBatch(&plain, &ycsb_plain, 7, 40);

  core::BionicDb hooked(Opts());
  fault::FaultScheduler sched(fault::FaultConfig{.seed = 7});
  sched.Attach(&hooked);
  workload::Ycsb ycsb_hooked(&hooked, YcsbOpts());
  ASSERT_TRUE(ycsb_hooked.Setup().ok());
  host::RunResult with_hooks = RunBatch(&hooked, &ycsb_hooked, 7, 40);

  // Installed-but-inert hooks must not change a single simulated cycle.
  EXPECT_EQ(base.committed, with_hooks.committed);
  EXPECT_EQ(base.cycles, with_hooks.cycles);
  EXPECT_TRUE(sched.events().empty());
  EXPECT_EQ(sched.ScheduleDigest(), 0u);
  // Guards were still registered for every bulk-loaded tuple.
  EXPECT_EQ(sched.guarded_tuples(), 2u * 200u);
  EXPECT_TRUE(sched.ScrubAll().empty());
}

TEST(FaultScheduler, DramWindowsSlowButNeverCorrupt) {
  fault::FaultConfig cfg;
  cfg.seed = 3;
  cfg.dram_spike_rate = 1e-3;
  cfg.dram_spike_extra_cycles = 32;
  cfg.dram_stuck_rate = 3e-4;
  cfg.dram_stuck_duration = 128;

  core::BionicDb engine(Opts());
  fault::FaultScheduler sched(cfg);
  sched.Attach(&engine);
  workload::Ycsb ycsb(&engine, YcsbOpts());
  ASSERT_TRUE(ycsb.Setup().ok());
  host::RunResult r = RunBatch(&engine, &ycsb, 3, 40);

  EXPECT_EQ(r.failed, 0u);
  EXPECT_EQ(r.committed, r.submitted);
  EXPECT_GT(engine.simulator().dram().fault_spike_cycles(), 0u);
  EXPECT_GT(engine.simulator().dram().fault_stuck_rejects(), 0u);
  bool saw_spike = false, saw_stuck = false;
  for (const fault::FaultEvent& e : sched.events()) {
    saw_spike |= e.kind == fault::FaultEvent::Kind::kDramSpike;
    saw_stuck |= e.kind == fault::FaultEvent::Kind::kDramStuck;
  }
  EXPECT_TRUE(saw_spike);
  EXPECT_TRUE(saw_stuck);
}

TEST(FaultScheduler, BitFlipsAreDetectedNeverSilent) {
  fault::FaultConfig cfg;
  cfg.seed = 5;
  cfg.bitflip_rate = 5e-4;

  core::BionicDb engine(Opts());
  fault::FaultScheduler sched(cfg);
  sched.Attach(&engine);  // before Setup so bulk-loaded tuples are guarded
  const workload::YcsbOptions yopts = YcsbOpts();
  workload::Ycsb ycsb(&engine, yopts);
  ASSERT_TRUE(ycsb.Setup().ok());
  RunBatch(&engine, &ycsb, 5, 40, /*retry_aborts=*/false);

  // Every injected flip must be detectable by a scrub, and nothing else
  // may look corrupted: zero silent corruption, zero false accusations.
  std::vector<sim::Addr> flipped = sched.flipped_tuples();
  ASSERT_FALSE(flipped.empty());
  std::sort(flipped.begin(), flipped.end());
  EXPECT_EQ(sched.ScrubAll(), flipped);

  // Probe every key once: accesses whose hash-chain walk crosses a
  // corrupted tuple must abort (CpStatus::kCorrupted), not return data.
  const uint32_t n = yopts.accesses_per_txn;
  const uint64_t rpp = yopts.records_per_partition;
  std::vector<sim::Addr> blocks;
  for (uint32_t w = 0; w < 2; ++w) {
    for (uint64_t k0 = 0; k0 < rpp; k0 += n) {
      db::TxnBlock block = engine.AllocateBlock(workload::Ycsb::kTxnType);
      for (uint32_t i = 0; i < n; ++i) {
        block.WriteKeyU64(int64_t(8 * i), w * rpp + (k0 + i) % rpp);
      }
      for (uint32_t i = 0; i < yopts.updates_per_txn; ++i) {
        block.WriteU64(int64_t(8 * n + 8 * i), 0xFEEDull + i);
      }
      engine.Submit(w, block.base());
      blocks.push_back(block.base());
    }
  }
  engine.Drain();
  uint64_t aborted = 0;
  for (sim::Addr addr : blocks) {
    db::TxnBlock block(&engine.simulator().dram(), addr);
    aborted += block.state() == db::TxnState::kAborted;
  }
  EXPECT_GE(aborted, 1u);
  EXPECT_GE(sched.corruption_detected(), 1u);
  EXPECT_GE(sched.corruption_checks(), sched.corruption_detected());
}

TEST(FaultScheduler, LossyChannelsStillCommitEverything) {
  fault::FaultConfig cfg;
  cfg.seed = 9;
  cfg.comm_drop_rate = 0.02;
  cfg.comm_dup_rate = 0.02;
  cfg.comm_delay_rate = 0.05;
  cfg.comm_delay_cycles = 16;

  core::BionicDb engine(Opts());
  fault::FaultScheduler sched(cfg);
  sched.Attach(&engine);
  workload::YcsbOptions yopts = YcsbOpts();
  yopts.mode = workload::YcsbOptions::Mode::kMultisite;
  yopts.remote_fraction = 0.75;
  workload::Ycsb ycsb(&engine, yopts);
  ASSERT_TRUE(ycsb.Setup().ok());
  host::RunResult r = RunBatch(&engine, &ycsb, 9, 60);

  // Attach must have turned the delivery-guarantee layer on by itself.
  EXPECT_TRUE(engine.fabric().reliability().enabled);
  EXPECT_EQ(r.failed, 0u);
  EXPECT_EQ(r.committed, r.submitted);
  EXPECT_GE(engine.fabric().retransmits(), 1u);
  EXPECT_GE(engine.fabric().counters().Get("duplicates_suppressed"), 1u);
  bool saw_drop = false;
  for (const fault::FaultEvent& e : sched.events()) {
    saw_drop |= e.kind == fault::FaultEvent::Kind::kCommDrop;
  }
  EXPECT_TRUE(saw_drop);
}

TEST(FaultScheduler, WorkerFreezeChargesFrozenCycles) {
  fault::FaultConfig cfg;
  cfg.seed = 4;
  cfg.worker_freeze_rate = 5e-4;
  cfg.worker_freeze_cycles = 128;

  core::BionicDb engine(Opts());
  fault::FaultScheduler sched(cfg);
  sched.Attach(&engine);
  workload::Ycsb ycsb(&engine, YcsbOpts());
  ASSERT_TRUE(ycsb.Setup().ok());
  host::RunResult r = RunBatch(&engine, &ycsb, 4, 40);

  EXPECT_EQ(r.failed, 0u);  // a freeze delays work, it never loses it
  bool saw_freeze = false;
  for (const fault::FaultEvent& e : sched.events()) {
    saw_freeze |= e.kind == fault::FaultEvent::Kind::kWorkerFreeze;
  }
  ASSERT_TRUE(saw_freeze);
  StatsRegistry reg;
  engine.CollectStats(&reg);
  uint64_t frozen = 0;
  for (uint32_t w = 0; w < 2; ++w) {
    frozen += reg.GetCounter("workers/" + std::to_string(w) +
                             "/cycles/frozen");
  }
  EXPECT_GT(frozen, 0u);
}

TEST(FaultScheduler, MidBatchCrashReplayVerifies) {
  fault::FaultConfig cfg;
  cfg.seed = 21;
  cfg.dram_spike_rate = 5e-4;
  cfg.worker_freeze_rate = 1e-4;
  cfg.worker_freeze_cycles = 64;

  const workload::YcsbOptions yopts = YcsbOpts();
  core::BionicDb crashed(Opts());
  fault::FaultScheduler sched(cfg);
  sched.Attach(&crashed);
  workload::Ycsb ycsb(&crashed, yopts);
  ASSERT_TRUE(ycsb.Setup().ok());
  log::Checkpoint initial = log::Checkpoint::Capture(crashed.database());

  log::CommandLog cmd_log(&crashed);
  Rng rng(21);
  std::vector<std::pair<size_t, sim::Addr>> submitted;
  for (uint32_t w = 0; w < 2; ++w) {
    for (int i = 0; i < 40; ++i) {
      sim::Addr block = ycsb.MakeTxn(&rng, w);
      submitted.emplace_back(cmd_log.Append(w, block), block);
      crashed.Submit(w, block);
    }
  }
  // Crash once roughly half the batch has committed.
  const uint64_t deadline = crashed.now() + (1ull << 24);
  while (crashed.TotalCommitted() < submitted.size() / 2 &&
         crashed.now() < deadline) {
    crashed.Step(128);
  }
  sched.RecordCrash(crashed.now());
  for (const auto& [rec, block] : submitted) cmd_log.MarkOutcome(rec, block);
  uint64_t committed = 0;
  for (const log::LogRecord& rec : cmd_log.records()) {
    committed += rec.committed;
  }
  ASSERT_GE(committed, 1u);
  ASSERT_LT(committed, submitted.size());  // genuinely mid-batch

  core::BionicDb recovered(Opts());
  for (const db::TableSchema& schema :
       crashed.database().catalogue().tables()) {
    ASSERT_TRUE(recovered.database().CreateTable(schema).ok());
  }
  const db::ProcedureInfo* proc =
      crashed.database().catalogue().FindProcedure(workload::Ycsb::kTxnType);
  ASSERT_NE(proc, nullptr);
  ASSERT_TRUE(recovered
                  .RegisterProcedure(workload::Ycsb::kTxnType, proc->program,
                                     proc->block_data_size)
                  .ok());
  ASSERT_TRUE(log::Recover(&recovered, initial, cmd_log).ok());

  fault::RecoveryVerifier::Result verdict = fault::RecoveryVerifier::Verify(
      initial, cmd_log,
      fault::MakeYcsbUpdateMixApplier(yopts.records_per_partition,
                                      yopts.accesses_per_txn,
                                      yopts.updates_per_txn),
      recovered.database());
  EXPECT_EQ(verdict.applier_errors, 0u);
  EXPECT_TRUE(verdict.equivalent) << verdict.first_diff;
  EXPECT_EQ(verdict.tuples_compared, 2u * yopts.records_per_partition);
}

struct ChaosOutcome {
  uint32_t digest;
  size_t events;
  uint64_t committed;
  uint64_t failed;
  uint64_t cycles;
};

ChaosOutcome RunChaos(uint64_t seed) {
  fault::FaultConfig cfg;
  cfg.seed = seed;
  cfg.dram_spike_rate = 5e-4;
  cfg.dram_stuck_rate = 1e-4;
  cfg.dram_stuck_duration = 64;
  cfg.worker_freeze_rate = 1e-4;
  cfg.worker_freeze_cycles = 64;

  core::BionicDb engine(Opts());
  fault::FaultScheduler sched(cfg);
  sched.Attach(&engine);
  workload::Ycsb ycsb(&engine, YcsbOpts());
  if (!ycsb.Setup().ok()) return {};
  host::RunResult r = RunBatch(&engine, &ycsb, seed, 40);
  return {sched.ScheduleDigest(), sched.events().size(), r.committed,
          r.failed, r.cycles};
}

TEST(FaultScheduler, SameSeedReplaysIdenticalSchedule) {
  ChaosOutcome a = RunChaos(17);
  ChaosOutcome b = RunChaos(17);
  ASSERT_GT(a.events, 0u);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.cycles, b.cycles);

  ChaosOutcome c = RunChaos(18);
  EXPECT_NE(a.digest, c.digest);
}

TEST(ShadowModel, RejectsUpdatesToMissingKeysAndOverruns) {
  log::Checkpoint empty;
  fault::ShadowModel shadow(empty);
  std::vector<uint8_t> key{0, 0, 0, 0, 0, 0, 0, 1};
  const uint8_t data[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_FALSE(shadow.UpdatePayload(0, 0, key, 0, data, 8));
  shadow.Put(0, 0, key, std::vector<uint8_t>(16, 0xAA));
  EXPECT_TRUE(shadow.UpdatePayload(0, 0, key, 0, data, 8));
  EXPECT_FALSE(shadow.UpdatePayload(0, 0, key, 12, data, 8));  // overrun
  EXPECT_TRUE(shadow.Erase(0, 0, key));
  EXPECT_FALSE(shadow.Erase(0, 0, key));
}

}  // namespace
}  // namespace bionicdb
