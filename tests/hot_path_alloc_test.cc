// Steady-state heap-allocation audit for the serial simulation hot path.
//
// The dense-activity speedup work (DESIGN.md section 15) replaced the hot
// path's per-cycle heap traffic — std::vector keys, snapshot vectors,
// std::deque FIFO block churn — with inline/arena/ring containers that
// reach a warm high-water mark and then stop allocating. This test pins
// that property down so it cannot silently regress: it overrides global
// operator new/delete with counting wrappers, warms a serial engine on a
// read-only YCSB burst, and then asserts that a steady-state simulation
// window performs ZERO heap allocations — from the counted global
// operators and from sim::HotAllocProbe (the arena/inline/ring heap
// fallback tally) alike.
//
// The audit runs single-threaded by construction (serial simulator mode,
// no driver threads), so the process-global counters attribute every
// allocation to the simulation loop under test.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#if __has_include(<execinfo.h>)
#include <execinfo.h>
#define BIONICDB_HAVE_BACKTRACE 1
#endif

#include "common/random.h"
#include "core/engine.h"
#include "sim/arena.h"
#include "workload/ycsb.h"

namespace {
std::atomic<uint64_t> g_heap_allocs{0};
// Armed by the test around the measured window when BIONICDB_ALLOC_TRAP is
// set: the first steady-state allocation aborts, so a debugger backtrace
// lands on the offending call site instead of a post-hoc counter delta.
std::atomic<bool> g_trap{false};

void* CountedAlloc(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (g_trap.load(std::memory_order_relaxed)) {
    g_trap.store(false, std::memory_order_relaxed);  // don't recurse
#ifdef BIONICDB_HAVE_BACKTRACE
    void* frames[32];
    int n = backtrace(frames, 32);
    backtrace_symbols_fd(frames, n, 2);
#endif
    std::abort();
  }
  if (void* p = std::malloc(size > 0 ? size : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

// Counting overrides for the plain (unaligned) global allocation forms —
// the only forms the simulator's containers use. Over-aligned allocations
// fall through to the default aligned operator new/delete pair, which is
// self-consistent and outside this audit.
void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace bionicdb {
namespace {

TEST(HotPathAlloc, SteadyStateWindowPerformsZeroHeapAllocations) {
  core::EngineOptions opts;
  opts.n_workers = 2;
  opts.timing.event_driven = false;  // audit the per-cycle serial loop
  opts.timing.parallel_hosts = 0;
  core::BionicDb engine(opts);

  workload::YcsbOptions yopts;
  yopts.mode = workload::YcsbOptions::Mode::kReadOnly;
  yopts.accesses_per_txn = 8;
  yopts.records_per_partition = 1'000;
  yopts.payload_len = 64;
  workload::Ycsb ycsb(&engine, yopts);
  ASSERT_TRUE(ycsb.Setup().ok());

  // Queue a burst big enough to outlast warmup + measurement (~19k cycles
  // of work at this configuration), so the measured window is genuinely
  // dense steady state rather than drain-to-idle. All block allocation and
  // host-side writes happen here, before either window.
  constexpr uint64_t kTxnsPerWorker = 200;
  Rng rng(42);
  for (uint32_t w = 0; w < opts.n_workers; ++w) {
    for (uint64_t i = 0; i < kTxnsPerWorker; ++i) {
      engine.Submit(w, ycsb.MakeTxn(&rng, w));
    }
  }

  // Warmup: queues reach occupancy, arenas and rings hit their high-water
  // marks, every hot stats slot is bound.
  engine.Step(6'000);
  const uint64_t committed_warm = engine.TotalCommitted();
  ASSERT_GT(committed_warm, 0u) << "warmup window committed nothing";

  const uint64_t heap_before = g_heap_allocs.load(std::memory_order_relaxed);
  const uint64_t probe_before = sim::HotAllocProbe::Count();
  if (std::getenv("BIONICDB_ALLOC_TRAP") != nullptr) g_trap.store(true);
  engine.Step(4'000);
  g_trap.store(false);
  const uint64_t heap_delta =
      g_heap_allocs.load(std::memory_order_relaxed) - heap_before;
  const uint64_t probe_delta = sim::HotAllocProbe::Count() - probe_before;

  // The window must have been live on both ends: commits advanced, and
  // work remained queued when it closed.
  const uint64_t committed_after = engine.TotalCommitted();
  EXPECT_GT(committed_after, committed_warm)
      << "measured window committed nothing — not a steady-state sample";
  EXPECT_LT(committed_after, opts.n_workers * kTxnsPerWorker)
      << "burst drained before the window closed — widen the burst";

  EXPECT_EQ(heap_delta, 0u)
      << "serial hot path heap-allocated during steady state";
  EXPECT_EQ(probe_delta, 0u)
      << "arena/inline/ring containers spilled to the heap during steady "
         "state (HotAllocProbe)";
}

}  // namespace
}  // namespace bionicdb
