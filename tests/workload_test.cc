// Integration tests: full workloads driven end-to-end through the engine,
// with functional-state oracles (conservation laws, counter advancement).
#include <gtest/gtest.h>

#include "common/random.h"
#include "db/tuple.h"
#include "host/driver.h"
#include "workload/kv.h"
#include "workload/tpcc.h"
#include "workload/ycsb.h"

namespace bionicdb {
namespace {

core::EngineOptions SmallEngine(uint32_t workers) {
  core::EngineOptions opts;
  opts.n_workers = workers;
  return opts;
}

workload::YcsbOptions SmallYcsb(workload::YcsbOptions::Mode mode) {
  workload::YcsbOptions o;
  o.mode = mode;
  o.records_per_partition = 2000;
  o.payload_len = 64;
  o.accesses_per_txn = 8;
  o.updates_per_txn = 4;
  o.scan_len = 20;
  return o;
}

TEST(YcsbIntegration, ReadOnlyAllCommit) {
  core::BionicDb engine(SmallEngine(2));
  workload::Ycsb ycsb(&engine, SmallYcsb(workload::YcsbOptions::Mode::kReadOnly));
  ASSERT_TRUE(ycsb.Setup().ok());
  Rng rng(1);
  host::TxnList txns;
  for (uint32_t w = 0; w < 2; ++w) {
    for (int i = 0; i < 50; ++i) txns.emplace_back(w, ycsb.MakeTxn(&rng, w));
  }
  auto result = host::RunToCompletion(&engine, txns);
  EXPECT_EQ(result.committed, 100u);
  EXPECT_EQ(result.failed, 0u);
  EXPECT_EQ(result.retries, 0u);  // read-only transactions never conflict
  EXPECT_GT(result.tps, 0.0);
}

TEST(YcsbIntegration, UpdateMixCommitsAndUpdatesPayloads) {
  core::BionicDb engine(SmallEngine(1));
  auto opts = SmallYcsb(workload::YcsbOptions::Mode::kUpdateMix);
  core::BionicDb* e = &engine;
  workload::Ycsb ycsb(e, opts);
  ASSERT_TRUE(ycsb.Setup().ok());
  Rng rng(2);
  host::TxnList txns;
  for (int i = 0; i < 40; ++i) txns.emplace_back(0, ycsb.MakeTxn(&rng, 0));
  auto result = host::RunToCompletion(&engine, txns);
  EXPECT_EQ(result.committed + result.failed, 40u);
  EXPECT_EQ(result.failed, 0u);

  // Committed updates must have installed their new values: re-read a
  // block's first update key and compare the tuple's first 8 payload bytes.
  for (const auto& [w, addr] : txns) {
    db::TxnBlock block(&engine.simulator().dram(), addr);
    if (block.state() != db::TxnState::kCommitted) continue;
    uint64_t key = block.ReadKeyU64(0);
    uint64_t expect = block.ReadU64(int64_t(8 * opts.accesses_per_txn));
    sim::Addr t = engine.database().FindU64(workload::Ycsb::kTable, w, key);
    ASSERT_NE(t, sim::kNullAddr);
    db::TupleAccessor acc(engine.database().dram(), t);
    EXPECT_FALSE(acc.dirty());
    // The last committed writer of this key wins; we only check the tuple
    // is committed and has one of the submitted values when unique.
    (void)expect;
  }
}

TEST(YcsbIntegration, ScanOnlyCommits) {
  core::BionicDb engine(SmallEngine(2));
  workload::Ycsb ycsb(&engine, SmallYcsb(workload::YcsbOptions::Mode::kScanOnly));
  ASSERT_TRUE(ycsb.Setup().ok());
  Rng rng(3);
  host::TxnList txns;
  for (uint32_t w = 0; w < 2; ++w) {
    for (int i = 0; i < 20; ++i) txns.emplace_back(w, ycsb.MakeTxn(&rng, w));
  }
  auto result = host::RunToCompletion(&engine, txns);
  EXPECT_EQ(result.committed, 40u);
  EXPECT_EQ(result.failed, 0u);
}

TEST(YcsbIntegration, MultisiteAllCommit) {
  core::BionicDb engine(SmallEngine(4));
  workload::Ycsb ycsb(&engine,
                      SmallYcsb(workload::YcsbOptions::Mode::kMultisite));
  ASSERT_TRUE(ycsb.Setup().ok());
  Rng rng(4);
  host::TxnList txns;
  for (uint32_t w = 0; w < 4; ++w) {
    for (int i = 0; i < 25; ++i) txns.emplace_back(w, ycsb.MakeTxn(&rng, w));
  }
  auto result = host::RunToCompletion(&engine, txns);
  EXPECT_EQ(result.committed, 100u);
  EXPECT_EQ(result.failed, 0u);
  // Remote accesses must actually have crossed the fabric.
  EXPECT_GT(engine.fabric().messages_sent(), 0u);
}

TEST(KvIntegration, BulkInsertThenSearch) {
  core::BionicDb engine(SmallEngine(1));
  workload::KvOptions opts;
  opts.ops_per_txn = 16;
  opts.preload_per_partition = 500;
  workload::KvBench kv(&engine, opts);
  ASSERT_TRUE(kv.Setup().ok());
  host::TxnList txns;
  for (int i = 0; i < 10; ++i) {
    txns.emplace_back(0, kv.MakeInsertTxn(0, /*sequential=*/false));
  }
  auto r1 = host::RunToCompletion(&engine, txns);
  EXPECT_EQ(r1.committed, 10u);

  Rng rng(5);
  host::TxnList searches;
  for (int i = 0; i < 10; ++i) {
    searches.emplace_back(0, kv.MakeSearchTxn(&rng, 0));
  }
  auto r2 = host::RunToCompletion(&engine, searches);
  EXPECT_EQ(r2.committed, 10u);
}


TEST(KvIntegration, RemoveChurnLifecycle) {
  core::BionicDb engine(SmallEngine(1));
  workload::KvOptions opts;
  opts.ops_per_txn = 8;
  opts.preload_per_partition = 100;
  workload::KvBench kv(&engine, opts);
  ASSERT_TRUE(kv.Setup().ok());

  // Remove keys 0..7 transactionally.
  std::vector<uint64_t> victims{0, 1, 2, 3, 4, 5, 6, 7};
  auto r1 = host::RunToCompletion(&engine, {{0, kv.MakeRemoveTxn(victims)}});
  ASSERT_EQ(r1.committed, 1u);
  for (uint64_t k : victims) {
    db::TupleAccessor t(engine.database().dram(),
                        engine.database().FindU64(0, 0, k));
    EXPECT_TRUE(t.tombstone()) << k;
    EXPECT_FALSE(t.dirty()) << k;
  }

  // A search over removed keys must abort with NotFound.
  Rng rng(1);
  host::TxnList searches;
  {
    db::TxnBlock block = engine.AllocateBlock(workload::KvBench::kSearchTxn);
    for (uint32_t i = 0; i < opts.ops_per_txn; ++i) {
      block.WriteKeyU64(int64_t(8 * i), victims[i]);
    }
    searches.emplace_back(0, block.base());
  }
  auto r2 = host::RunToCompletion(&engine, searches, /*retry_aborts=*/false);
  EXPECT_EQ(r2.committed, 0u);
  EXPECT_EQ(r2.failed, 1u);

  // Re-inserting a removed key shadows the tombstone: searches hit again.
  auto ins = kv.MakeInsertTxn(0, /*sequential=*/false);
  // Rewrite the first inserted key to collide with a removed one.
  db::TxnBlock insert_block(&engine.simulator().dram(), ins);
  insert_block.WriteKeyU64(0, victims[0]);
  ASSERT_EQ(host::RunToCompletion(&engine, {{0, ins}}).committed, 1u);
  db::TupleAccessor fresh(engine.database().dram(),
                          engine.database().FindU64(0, 0, victims[0]));
  EXPECT_FALSE(fresh.tombstone());
  EXPECT_FALSE(fresh.dirty());
}

TEST(KvIntegration, AbortedRemoveResurrects) {
  core::BionicDb engine(SmallEngine(1));
  workload::KvOptions opts;
  opts.ops_per_txn = 8;
  opts.preload_per_partition = 100;
  workload::KvBench kv(&engine, opts);
  ASSERT_TRUE(kv.Setup().ok());

  // Remove 7 live keys plus one missing key: the NotFound RET aborts the
  // transaction, and the hardware rollback must clear every tombstone.
  std::vector<uint64_t> keys{10, 11, 12, 13, 14, 15, 16, 999999};
  auto r = host::RunToCompletion(&engine, {{0, kv.MakeRemoveTxn(keys)}},
                                 /*retry_aborts=*/false);
  EXPECT_EQ(r.committed, 0u);
  for (uint64_t k : {10, 11, 12, 13, 14, 15, 16}) {
    db::TupleAccessor t(engine.database().dram(),
                        engine.database().FindU64(0, 0, uint64_t(k)));
    EXPECT_FALSE(t.tombstone()) << k;
    EXPECT_FALSE(t.dirty()) << k;
  }
}

class TpccIntegration : public ::testing::Test {
 protected:
  void SetUp() override {
    core::EngineOptions opts = SmallEngine(2);
    opts.softcore.max_contexts = 4;  // contention-friendly batch size
    engine_ = std::make_unique<core::BionicDb>(opts);
    tpcc_ = std::make_unique<workload::Tpcc>(engine_.get(),
                                             workload::TpccTestOptions());
    ASSERT_TRUE(tpcc_->Setup().ok());
  }

  uint64_t DistrictNextOid(uint32_t w, uint32_t d) {
    sim::Addr t = engine_->database().FindU64Le(workload::Tpcc::kDistrict, w,
                                                tpcc_->DistrictKey(w, d));
    EXPECT_NE(t, sim::kNullAddr);
    db::TupleAccessor acc(engine_->database().dram(), t);
    uint64_t v;
    engine_->database().dram()->ReadBytes(acc.payload_addr(), &v, 8);
    return v;
  }

  uint64_t WarehouseYtd(uint32_t w) {
    sim::Addr t = engine_->database().FindU64Le(workload::Tpcc::kWarehouse, w,
                                                tpcc_->WarehouseKey(w));
    EXPECT_NE(t, sim::kNullAddr);
    db::TupleAccessor acc(engine_->database().dram(), t);
    uint64_t v;
    engine_->database().dram()->ReadBytes(acc.payload_addr(), &v, 8);
    return v;
  }

  std::unique_ptr<core::BionicDb> engine_;
  std::unique_ptr<workload::Tpcc> tpcc_;
};

TEST_F(TpccIntegration, NewOrderAdvancesDistrictCounters) {
  Rng rng(7);
  host::TxnList txns;
  for (uint32_t w = 0; w < 2; ++w) {
    for (int i = 0; i < 25; ++i) {
      txns.emplace_back(w, tpcc_->MakeNewOrder(&rng, w));
    }
  }
  auto result = host::RunToCompletion(engine_.get(), txns);
  EXPECT_EQ(result.failed, 0u);
  EXPECT_EQ(result.committed, 50u);

  // Every committed NewOrder bumped exactly one district's next_o_id.
  uint64_t advanced = 0;
  for (uint32_t w = 0; w < 2; ++w) {
    for (uint32_t d = 0; d < tpcc_->options().districts_per_warehouse; ++d) {
      advanced += DistrictNextOid(w, d) - 3001;
    }
  }
  EXPECT_EQ(advanced, result.committed);

  // The inserted orders must be findable with their computed keys.
  uint64_t orders_found = 0;
  for (uint32_t w = 0; w < 2; ++w) {
    for (uint32_t d = 0; d < tpcc_->options().districts_per_warehouse; ++d) {
      uint64_t next = DistrictNextOid(w, d);
      for (uint64_t o = 3001; o < next; ++o) {
        sim::Addr t = engine_->database().FindU64Le(
            workload::Tpcc::kOrder, w, tpcc_->OrderKey(w, d, o));
        ASSERT_NE(t, sim::kNullAddr);
        db::TupleAccessor acc(engine_->database().dram(), t);
        EXPECT_FALSE(acc.dirty());
        EXPECT_FALSE(acc.tombstone());
        ++orders_found;
      }
    }
  }
  EXPECT_EQ(orders_found, result.committed);
}


TEST_F(TpccIntegration, DeliveryProcessesOldestOrders) {
  Rng rng(17);
  // Feed one district a known set of orders.
  host::TxnList orders;
  constexpr int kOrders = 6;
  for (int i = 0; i < kOrders; ++i) {
    sim::Addr block = tpcc_->MakeNewOrder(&rng, 0);
    // Pin to district 0 (generator chooses randomly).
    db::TxnBlock b(&engine_->simulator().dram(), block);
    b.WriteU64(8, tpcc_->DistrictKey(0, 0));
    b.WriteU64(24, tpcc_->CompactDistrictId(0, 0));
    orders.emplace_back(0, block);
  }
  ASSERT_EQ(host::RunToCompletion(engine_.get(), orders).failed, 0u);
  uint64_t balance_before = 0;
  for (uint32_t c = 0; c < tpcc_->options().customers_per_district; ++c) {
    sim::Addr t = engine_->database().FindU64Le(workload::Tpcc::kCustomer, 0,
                                                tpcc_->CustomerKey(0, 0, c));
    db::TupleAccessor acc(engine_->database().dram(), t);
    uint64_t v;
    engine_->database().dram()->ReadBytes(acc.payload_addr(), &v, 8);
    balance_before += v;
  }

  // Deliver three of them.
  constexpr int kDeliveries = 3;
  host::TxnList deliveries;
  for (int i = 0; i < kDeliveries; ++i) {
    sim::Addr block = tpcc_->MakeDelivery(&rng, 0);
    db::TxnBlock b(&engine_->simulator().dram(), block);
    b.WriteU64(0, tpcc_->DistrictKey(0, 0));
    b.WriteU64(8, tpcc_->CompactDistrictId(0, 0));
    deliveries.emplace_back(0, block);
  }
  ASSERT_EQ(host::RunToCompletion(engine_.get(), deliveries).failed, 0u);

  // The district's delivery cursor advanced by exactly kDeliveries.
  sim::Addr d = engine_->database().FindU64Le(workload::Tpcc::kDistrict, 0,
                                              tpcc_->DistrictKey(0, 0));
  db::TupleAccessor dacc(engine_->database().dram(), d);
  uint64_t next_delivery;
  engine_->database().dram()->ReadBytes(
      dacc.payload_addr() + workload::Tpcc::kDistrictNextDelivery,
      &next_delivery, 8);
  EXPECT_EQ(next_delivery, 3001u + kDeliveries);

  uint64_t delivered_amount = 0;
  for (uint64_t o = 3001; o < 3001 + kOrders; ++o) {
    const bool delivered = o < 3001 + kDeliveries;
    uint64_t okey = tpcc_->OrderKey(0, 0, o);
    // NEW-ORDER rows of delivered orders are tombstoned.
    db::TupleAccessor no_acc(
        engine_->database().dram(),
        engine_->database().FindU64Le(workload::Tpcc::kNewOrderTable, 0,
                                      okey));
    EXPECT_EQ(no_acc.tombstone(), delivered) << o;
    // Carrier stamped on delivered orders only.
    db::TupleAccessor o_acc(
        engine_->database().dram(),
        engine_->database().FindU64Le(workload::Tpcc::kOrder, 0, okey));
    uint64_t carrier, ol_cnt;
    engine_->database().dram()->ReadBytes(
        o_acc.payload_addr() + workload::Tpcc::kOrderCarrier, &carrier, 8);
    engine_->database().dram()->ReadBytes(
        o_acc.payload_addr() + workload::Tpcc::kOrderOlCnt, &ol_cnt, 8);
    EXPECT_EQ(carrier != 0, delivered) << o;
    for (uint64_t l = 0; l < ol_cnt; ++l) {
      db::TupleAccessor ol_acc(
          engine_->database().dram(),
          engine_->database().FindU64Le(workload::Tpcc::kOrderLine, 0,
                                        okey * 16 + l));
      uint64_t flag, amount;
      engine_->database().dram()->ReadBytes(
          ol_acc.payload_addr() + workload::Tpcc::kOrderLineDelivered, &flag,
          8);
      engine_->database().dram()->ReadBytes(
          ol_acc.payload_addr() + workload::Tpcc::kOrderLineAmount, &amount,
          8);
      EXPECT_EQ(flag != 0, delivered) << o << ":" << l;
      if (delivered) delivered_amount += amount;
    }
  }
  // Money conservation: total customer balance grew by the delivered sum.
  uint64_t balance_after = 0;
  for (uint32_t c = 0; c < tpcc_->options().customers_per_district; ++c) {
    sim::Addr t = engine_->database().FindU64Le(workload::Tpcc::kCustomer, 0,
                                                tpcc_->CustomerKey(0, 0, c));
    db::TupleAccessor acc(engine_->database().dram(), t);
    uint64_t v;
    engine_->database().dram()->ReadBytes(acc.payload_addr(), &v, 8);
    balance_after += v;
  }
  EXPECT_EQ(balance_after - balance_before, delivered_amount);
}

TEST_F(TpccIntegration, DeliveryOnEmptyDistrictIsNoOpCommit) {
  Rng rng(18);
  sim::Addr block = tpcc_->MakeDelivery(&rng, 1);
  auto r = host::RunToCompletion(engine_.get(), {{1, block}});
  EXPECT_EQ(r.committed, 1u);  // no-op, but still commits
}

TEST_F(TpccIntegration, OrderStatusReportsLatestOrderTotal) {
  Rng rng(19);
  sim::Addr order = tpcc_->MakeNewOrder(&rng, 0);
  db::TxnBlock ob(&engine_->simulator().dram(), order);
  ob.WriteU64(8, tpcc_->DistrictKey(0, 1));
  ob.WriteU64(24, tpcc_->CompactDistrictId(0, 1));
  ASSERT_EQ(host::RunToCompletion(engine_.get(), {{0, order}}).failed, 0u);

  sim::Addr status = tpcc_->MakeOrderStatus(&rng, 0);
  db::TxnBlock sb(&engine_->simulator().dram(), status);
  sb.WriteU64(0, tpcc_->DistrictKey(0, 1));
  sb.WriteU64(8, tpcc_->CompactDistrictId(0, 1));
  ASSERT_EQ(host::RunToCompletion(engine_.get(), {{0, status}}).failed, 0u);

  // Expected total: sum over the committed order-line tuples.
  uint64_t expected = 0;
  const uint32_t L = tpcc_->options().ol_cnt;
  uint64_t okey = tpcc_->OrderKey(0, 1, 3001);
  for (uint32_t l = 0; l < L; ++l) {
    db::TupleAccessor ol(
        engine_->database().dram(),
        engine_->database().FindU64Le(workload::Tpcc::kOrderLine, 0,
                                      okey * 16 + l));
    uint64_t amount;
    engine_->database().dram()->ReadBytes(
        ol.payload_addr() + workload::Tpcc::kOrderLineAmount, &amount, 8);
    expected += amount;
  }
  EXPECT_EQ(sb.ReadU64(40), expected);
  EXPECT_GT(expected, 0u);
}

TEST_F(TpccIntegration, OrderStatusOnEmptyDistrictCommits) {
  Rng rng(20);
  sim::Addr status = tpcc_->MakeOrderStatus(&rng, 1);
  auto r = host::RunToCompletion(engine_.get(), {{1, status}});
  EXPECT_EQ(r.committed, 1u);
  db::TxnBlock sb(&engine_->simulator().dram(), status);
  EXPECT_EQ(sb.ReadU64(40), 0u);
}


TEST_F(TpccIntegration, StockLevelCountsLowStockLines) {
  Rng rng(23);
  // Create a known set of orders in district (0,0).
  constexpr int kOrders = 5;
  host::TxnList orders;
  for (int i = 0; i < kOrders; ++i) {
    sim::Addr block = tpcc_->MakeNewOrder(&rng, 0);
    db::TxnBlock b(&engine_->simulator().dram(), block);
    b.WriteU64(8, tpcc_->DistrictKey(0, 0));
    b.WriteU64(24, tpcc_->CompactDistrictId(0, 0));
    orders.emplace_back(0, block);
  }
  ASSERT_EQ(host::RunToCompletion(engine_.get(), orders).failed, 0u);

  auto run_stock_level = [&](uint64_t threshold) {
    sim::Addr block = tpcc_->MakeStockLevel(&rng, 0, threshold);
    db::TxnBlock b(&engine_->simulator().dram(), block);
    b.WriteU64(0, tpcc_->DistrictKey(0, 0));
    b.WriteU64(8, tpcc_->CompactDistrictId(0, 0));
    EXPECT_EQ(host::RunToCompletion(engine_.get(), {{0, block}}).failed, 0u);
    return b.ReadU64(48);
  };
  // Threshold above every possible quantity counts every inspected line:
  // min(20, kOrders) orders x ol_cnt lines each.
  const uint64_t lines = kOrders * tpcc_->options().ol_cnt;
  EXPECT_EQ(run_stock_level(100'000), lines);
  // Threshold zero counts nothing (quantity is never negative).
  EXPECT_EQ(run_stock_level(0), 0u);
  // An intermediate threshold counts a subset.
  uint64_t some = run_stock_level(60);
  EXPECT_LE(some, lines);
}

TEST_F(TpccIntegration, StockLevelOnEmptyDistrictCommitsZero) {
  Rng rng(24);
  sim::Addr block = tpcc_->MakeStockLevel(&rng, 1, 100);
  db::TxnBlock b(&engine_->simulator().dram(), block);
  auto r = host::RunToCompletion(engine_.get(), {{1, block}});
  EXPECT_EQ(r.committed, 1u);
  EXPECT_EQ(b.ReadU64(48), 0u);
}

TEST_F(TpccIntegration, PaymentConservesMoney) {
  Rng rng(8);
  host::TxnList txns;
  uint64_t n = 30;
  for (uint32_t w = 0; w < 2; ++w) {
    for (uint64_t i = 0; i < n; ++i) {
      txns.emplace_back(w, tpcc_->MakePayment(&rng, w));
    }
  }
  auto result = host::RunToCompletion(engine_.get(), txns);
  EXPECT_EQ(result.failed, 0u);
  EXPECT_EQ(result.committed, 2 * n);

  // Sum of committed amounts must equal the warehouses' total YTD.
  uint64_t total_amount = 0;
  for (const auto& [w, addr] : txns) {
    db::TxnBlock block(&engine_->simulator().dram(), addr);
    if (block.state() == db::TxnState::kCommitted) {
      total_amount += block.ReadU64(40);
    }
  }
  EXPECT_EQ(WarehouseYtd(0) + WarehouseYtd(1), total_amount);
}

}  // namespace
}  // namespace bionicdb
