// Softcore behaviour tests: ISA execution through the whole engine,
// transaction grouping / batch closure, serial vs interleaved modes,
// data-dependent RETs, the UNDO-log abort path, and remote write-sets.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "host/driver.h"
#include "db/tuple.h"
#include "isa/assembler.h"
#include "isa/program.h"

namespace bionicdb {
namespace {

using core::BionicDb;
using core::EngineOptions;
using isa::ProgramBuilder;

db::TableSchema KvSchema(uint32_t payload_len = 8) {
  db::TableSchema s;
  s.id = 0;
  s.key_len = 8;
  s.payload_len = payload_len;
  s.hash_buckets = 256;
  return s;
}

TEST(SoftcoreIsa, LoopArithmeticAndStores) {
  // sum = 1 + 2 + ... + 10, computed with CMP/BLT, stored into the block.
  const char* source = R"(
    .logic
      MOV r1, #0      ; sum
      MOV r2, #1      ; i
    loop:
      ADD r1, r1, r2
      ADD r2, r2, #1
      CMP r2, #10
      BLE loop
      STORE r1, [r0 + 8]
      SEARCH t0, key=0, cp=0
      YIELD
    .commit
      RET r3, cp0
      COMMIT
    .abort
      ABORT
  )";
  EngineOptions opts;
  opts.n_workers = 1;
  BionicDb engine(opts);
  ASSERT_TRUE(engine.database().CreateTable(KvSchema()).ok());
  uint64_t payload = 1;
  ASSERT_TRUE(engine.database().LoadU64(0, 0, 5, &payload, 8).ok());
  auto program = isa::Assemble(source);
  ASSERT_TRUE(program.ok()) << program.status();
  ASSERT_TRUE(engine.RegisterProcedure(1, program.value(), 64).ok());

  auto block = engine.AllocateBlock(1);
  block.WriteKeyU64(0, 5);
  engine.Submit(0, block.base());
  engine.Drain();
  EXPECT_EQ(engine.TotalCommitted(), 1u);
  EXPECT_EQ(block.ReadU64(8), 55u);
}

TEST(SoftcoreIsa, MulDivMovRegister) {
  const char* source = R"(
    .logic
      MOV r1, #6
      MUL r2, r1, #7      ; 42
      DIV r3, r2, #5      ; 8
      MOV r4, r3
      STORE r2, [r0 + 0]
      STORE r4, [r0 + 8]
      YIELD
    .commit
      COMMIT
    .abort
      ABORT
  )";
  EngineOptions opts;
  opts.n_workers = 1;
  BionicDb engine(opts);
  ASSERT_TRUE(engine.database().CreateTable(KvSchema()).ok());
  auto program = isa::Assemble(source);
  ASSERT_TRUE(program.ok()) << program.status();
  ASSERT_TRUE(engine.RegisterProcedure(1, program.value(), 64).ok());
  auto block = engine.AllocateBlock(1);
  engine.Submit(0, block.base());
  engine.Drain();
  EXPECT_EQ(block.ReadU64(0), 42u);
  EXPECT_EQ(block.ReadU64(8), 8u);
}

// A program consuming 64 CP registers: a 256-register file fits at most 4
// per batch, forcing batch closure on register exhaustion (section 4.5).
TEST(SoftcoreBatching, ClosesBatchOnRegisterExhaustion) {
  ProgramBuilder b;
  b.Logic();
  for (uint32_t i = 0; i < 64; ++i) {
    b.Search({.table_id = 0, .cp = isa::Reg(i), .key_offset = 0});
  }
  b.Yield();
  b.Commit();
  for (uint32_t i = 0; i < 64; ++i) b.Ret(1, isa::Reg(i));
  b.CommitTxn();
  b.Abort().AbortTxn();
  auto program = b.Build();
  ASSERT_TRUE(program.ok());

  EngineOptions opts;
  opts.n_workers = 1;
  BionicDb engine(opts);
  ASSERT_TRUE(engine.database().CreateTable(KvSchema()).ok());
  uint64_t payload = 1;
  ASSERT_TRUE(engine.database().LoadU64(0, 0, 9, &payload, 8).ok());
  ASSERT_TRUE(engine.RegisterProcedure(1, program.value(), 64).ok());
  for (int i = 0; i < 12; ++i) {
    auto block = engine.AllocateBlock(1);
    block.WriteKeyU64(0, 9);
    engine.Submit(0, block.base());
  }
  engine.Drain();
  EXPECT_EQ(engine.TotalCommitted(), 12u);
  // 12 txns, 4 per batch -> at least 3 batches.
  EXPECT_GE(engine.worker(0).stats().batches, 3u);
  EXPECT_GT(engine.worker(0)
                .softcore()
                .counters()
                .Get("batch_closed_on_registers"),
            0u);
}

TEST(SoftcoreBatching, OversizedTransactionRejectedNotLivelocked) {
  ProgramBuilder b;
  b.Logic();
  // needs 300 CP registers > 256.
  for (uint32_t i = 0; i < 150; ++i) {
    b.Search({.table_id = 0, .cp = isa::Reg(i % 250), .key_offset = 0});
  }
  b.Yield();
  b.Commit().CommitTxn();
  b.Abort().AbortTxn();
  auto program = b.Build();
  ASSERT_TRUE(program.ok());

  EngineOptions opts;
  opts.n_workers = 1;
  opts.softcore.n_cp_regs = 128;  // smaller than the program needs
  BionicDb engine(opts);
  ASSERT_TRUE(engine.database().CreateTable(KvSchema()).ok());
  ASSERT_TRUE(engine.RegisterProcedure(1, program.value(), 64).ok());
  auto block = engine.AllocateBlock(1);
  engine.Submit(0, block.base());
  ASSERT_TRUE(engine.simulator().RunUntilIdle(1'000'000));
  EXPECT_EQ(block.state(), db::TxnState::kAborted);
  EXPECT_EQ(engine.worker(0).softcore().counters().Get(
                "oversized_txn_rejected"),
            1u);
}

TEST(SoftcoreModes, SerialModeCommitsEverything) {
  EngineOptions opts;
  opts.n_workers = 1;
  opts.softcore.interleaving = false;
  BionicDb engine(opts);
  ASSERT_TRUE(engine.database().CreateTable(KvSchema()).ok());
  uint64_t payload = 3;
  for (uint64_t k = 0; k < 50; ++k) {
    ASSERT_TRUE(engine.database().LoadU64(0, 0, k, &payload, 8).ok());
  }
  ProgramBuilder b;
  b.Logic().Search({.table_id = 0, .cp = 0, .key_offset = 0}).Yield();
  b.Commit().Ret(1, 0).CommitTxn();
  b.Abort().AbortTxn();
  ASSERT_TRUE(engine.RegisterProcedure(1, b.Build().value(), 64).ok());
  for (uint64_t k = 0; k < 50; ++k) {
    auto block = engine.AllocateBlock(1);
    block.WriteKeyU64(0, k % 50);
    engine.Submit(0, block.base());
  }
  engine.Drain();
  EXPECT_EQ(engine.TotalCommitted(), 50u);
  // Serial execution never switches contexts.
  EXPECT_EQ(engine.worker(0).stats().context_switches, 0u);
}

// A data-dependent transaction: the logic phase RETs the search result and
// copies the tuple's value into the block (the pattern that serialises
// TPC-C, section 5.6).
TEST(SoftcoreDataDependency, RetInsideLogicPhase) {
  const char* source = R"(
    .logic
      SEARCH t0, key=0, cp=0
      RET  r1, cp0          ; blocks until the payload address returns
      LOAD r2, [r1 + 0]
      STORE r2, [r0 + 8]    ; copy tuple value into the block
      YIELD
    .commit
      COMMIT
    .abort
      ABORT
  )";
  EngineOptions opts;
  opts.n_workers = 1;
  BionicDb engine(opts);
  ASSERT_TRUE(engine.database().CreateTable(KvSchema()).ok());
  uint64_t payload = 777;
  ASSERT_TRUE(engine.database().LoadU64(0, 0, 1, &payload, 8).ok());
  auto program = isa::Assemble(source);
  ASSERT_TRUE(program.ok()) << program.status();
  ASSERT_TRUE(engine.RegisterProcedure(1, program.value(), 64).ok());
  auto block = engine.AllocateBlock(1);
  block.WriteKeyU64(0, 1);
  engine.Submit(0, block.base());
  engine.Drain();
  EXPECT_EQ(engine.TotalCommitted(), 1u);
  EXPECT_EQ(block.ReadU64(8), 777u);
}

// Full UNDO-log round trip: update tuple A in place, then hit an error on a
// missing key; the abort handler must restore A's original payload before
// the hardware rolls back the dirty marks.
TEST(SoftcoreAbort, UndoRestoreOnAbort) {
  const char* source = R"(
    ; block: 0 key A, 8 key B (missing), 16 undo slot
    .logic
      UPDATE t0, key=0, cp=0
      RET   r1, cp0          ; A's payload address
      LOAD  r2, [r1 + 0]
      STORE r2, [r0 + 16]    ; UNDO backup
      MOV   r3, #999
      STORE r3, [r1 + 0]     ; in-place update (premature, on purpose)
      SEARCH t0, key=8, cp=1
      YIELD
    .commit
      RET r4, cp1            ; NotFound -> jump to abort handler
      COMMIT
    .abort
      LOAD  r2, [r0 + 16]
      STORE r2, [r1 + 0]     ; restore A from the UNDO log
      ABORT
  )";
  EngineOptions opts;
  opts.n_workers = 1;
  BionicDb engine(opts);
  ASSERT_TRUE(engine.database().CreateTable(KvSchema()).ok());
  uint64_t payload = 123;
  ASSERT_TRUE(engine.database().LoadU64(0, 0, 7, &payload, 8).ok());
  auto program = isa::Assemble(source);
  ASSERT_TRUE(program.ok()) << program.status();
  ASSERT_TRUE(engine.RegisterProcedure(1, program.value(), 64).ok());
  auto block = engine.AllocateBlock(1);
  block.WriteKeyU64(0, 7);
  block.WriteKeyU64(8, 999999);  // no such key
  engine.Submit(0, block.base());
  engine.Drain();
  EXPECT_EQ(engine.TotalAborted(), 1u);

  db::TupleAccessor t(engine.database().dram(),
                      engine.database().FindU64(0, 0, 7));
  EXPECT_FALSE(t.dirty());  // rollback cleared the mark
  uint64_t value;
  engine.database().dram()->ReadBytes(t.payload_addr(), &value, 8);
  EXPECT_EQ(value, 123u);  // original restored
}

// Remote write: worker 0 updates a tuple living in partition 1. The result
// travels back over the response channel, the write-set entry lands at the
// initiator, and COMMIT publishes the remote tuple.
TEST(SoftcoreRemote, RemoteUpdateCommitsAcrossPartitions) {
  const char* source = R"(
    ; block: 0 key, 8 target partition, 16 new value
    .logic
      LOAD r1, [r0 + 8]
      UPDATE t0, key=0, cp=0, part=r1
      RET  r2, cp0
      LOAD r3, [r0 + 16]
      STORE r3, [r2 + 0]
      YIELD
    .commit
      COMMIT
    .abort
      ABORT
  )";
  EngineOptions opts;
  opts.n_workers = 2;
  BionicDb engine(opts);
  ASSERT_TRUE(engine.database().CreateTable(KvSchema()).ok());
  uint64_t payload = 50;
  ASSERT_TRUE(engine.database().LoadU64(0, 1, 4, &payload, 8).ok());
  auto program = isa::Assemble(source);
  ASSERT_TRUE(program.ok()) << program.status();
  ASSERT_TRUE(engine.RegisterProcedure(1, program.value(), 64).ok());

  auto block = engine.AllocateBlock(1);
  block.WriteKeyU64(0, 4);
  block.WriteU64(8, 1);  // remote partition
  block.WriteU64(16, 555);
  engine.Submit(0, block.base());  // initiated by worker 0
  engine.Drain();
  EXPECT_EQ(engine.TotalCommitted(), 1u);
  // Partitioned memory makes the remote tuple's arena foreign to worker 0:
  // UPDATE request + response, the STORE shipped to the owning partition,
  // and COMMIT publishing the remote write-set entry.
  EXPECT_EQ(engine.fabric().messages_sent(), 4u);

  db::TupleAccessor t(engine.database().dram(),
                      engine.database().FindU64(0, 1, 4));
  EXPECT_FALSE(t.dirty());
  uint64_t value;
  engine.database().dram()->ReadBytes(t.payload_addr(), &value, 8);
  EXPECT_EQ(value, 555u);
}

TEST(SoftcoreTiming, InterleavingOverlapsIndexLatency) {
  // 16 single-access transactions: interleaved execution must be
  // substantially faster than serial (Fig. 12a's 1-access point, ~3x).
  auto build = [](bool interleaving) {
    EngineOptions opts;
    opts.n_workers = 1;
    opts.softcore.interleaving = interleaving;
    return opts;
  };
  uint64_t cycles[2];
  for (int mode = 0; mode < 2; ++mode) {
    BionicDb engine(build(mode == 0));
    EXPECT_TRUE(engine.database().CreateTable(KvSchema()).ok());
    uint64_t payload = 0;
    for (uint64_t k = 0; k < 64; ++k) {
      ASSERT_TRUE(engine.database().LoadU64(0, 0, k, &payload, 8).ok());
    }
    ProgramBuilder b;
    b.Logic().Search({.table_id = 0, .cp = 0, .key_offset = 0}).Yield();
    b.Commit().Ret(1, 0).CommitTxn();
    b.Abort().AbortTxn();
    ASSERT_TRUE(engine.RegisterProcedure(1, b.Build().value(), 64).ok());
    for (uint64_t k = 0; k < 64; ++k) {
      auto block = engine.AllocateBlock(1);
      block.WriteKeyU64(0, k);
      engine.Submit(0, block.base());
    }
    cycles[mode] = engine.Drain();
    EXPECT_EQ(engine.TotalCommitted(), 64u);
  }
  // Interleaved (mode 0) must beat serial (mode 1) by at least 2x.
  EXPECT_LT(cycles[0] * 2, cycles[1]);
}


// Dynamic scheduling (section 4.5 future work): a RET blocking mid-logic
// parks the transaction instead of stalling the softcore, so dependent
// transactions overlap. Must produce identical results and win cycles.
TEST(SoftcoreDynamic, ParkingPreservesResultsAndSavesCycles) {
  const char* source = R"(
    .logic
      SEARCH t0, key=0, cp=0
      RET  r1, cp0          ; mid-logic data dependency
      LOAD r2, [r1 + 0]
      STORE r2, [r0 + 8]
      YIELD
    .commit
      COMMIT
    .abort
      ABORT
  )";
  uint64_t cycles[2];
  for (int dynamic = 0; dynamic < 2; ++dynamic) {
    EngineOptions opts;
    opts.n_workers = 1;
    opts.softcore.dynamic_switching = dynamic == 1;
    BionicDb engine(opts);
    ASSERT_TRUE(engine.database().CreateTable(KvSchema()).ok());
    for (uint64_t k = 0; k < 32; ++k) {
      uint64_t payload = 1000 + k;
      ASSERT_TRUE(engine.database().LoadU64(0, 0, k, &payload, 8).ok());
    }
    auto program = isa::Assemble(source);
    ASSERT_TRUE(program.ok());
    ASSERT_TRUE(engine.RegisterProcedure(1, program.value(), 64).ok());
    std::vector<db::TxnBlock> blocks;
    for (uint64_t k = 0; k < 32; ++k) {
      auto block = engine.AllocateBlock(1);
      block.WriteKeyU64(0, k);
      engine.Submit(0, block.base());
      blocks.push_back(block);
    }
    cycles[dynamic] = engine.Drain();
    EXPECT_EQ(engine.TotalCommitted(), 32u);
    for (uint64_t k = 0; k < 32; ++k) {
      EXPECT_EQ(blocks[k].ReadU64(8), 1000 + k) << k;
    }
    if (dynamic == 1) {
      EXPECT_GT(engine.worker(0).softcore().counters().Get("dynamic_parks"),
                0u);
    }
  }
  // Dynamic scheduling must overlap the dependent RET stalls.
  EXPECT_LT(cycles[1], cycles[0]);
}


// Wait-on-dirty CC extension: conflicting batchmates ride out each other's
// dirty windows instead of aborting — all commit with zero retries.
TEST(SoftcoreCcPolicy, WaitOnDirtyAvoidsRetries) {
  const char* source = R"(
    .logic
      UPDATE t0, key=0, cp=0
      YIELD
    .commit
      RET   r1, cp0
      LOAD  r2, [r1 + 0]
      ADD   r2, r2, #1
      STORE r2, [r1 + 0]
      COMMIT
    .abort
      ABORT
  )";
  // Memory-latency reordering can invert the dirty-ing order of
  // batchmates, creating a commit-order wait cycle that only the timeout
  // breaks — so waiting cannot eliminate every retry, but it must reduce
  // them, and correctness must hold in both policies.
  uint64_t retries[2];
  for (int i = 0; i < 2; ++i) {
    uint32_t wait = i == 0 ? 0u : 50'000u;
    EngineOptions opts;
    opts.n_workers = 1;
    opts.coproc.hash.dirty_wait_cycles = wait;
    BionicDb engine(opts);
    ASSERT_TRUE(engine.database().CreateTable(KvSchema()).ok());
    uint64_t payload = 0;
    ASSERT_TRUE(engine.database().LoadU64(0, 0, 1, &payload, 8).ok());
    auto program = isa::Assemble(source);
    ASSERT_TRUE(program.ok());
    ASSERT_TRUE(engine.RegisterProcedure(1, program.value(), 64).ok());
    host::TxnList txns;
    for (int t = 0; t < 6; ++t) {
      auto block = engine.AllocateBlock(1);
      block.WriteKeyU64(0, 1);
      txns.emplace_back(0, block.base());
    }
    auto result = host::RunToCompletion(&engine, txns);
    EXPECT_EQ(result.committed, 6u);
    retries[i] = result.retries;
    // Either way the counter ends up correct.
    db::TupleAccessor t(engine.database().dram(),
                        engine.database().FindU64(0, 0, 1));
    uint64_t value;
    engine.database().dram()->ReadBytes(t.payload_addr(), &value, 8);
    EXPECT_EQ(value, 6u);
  }
  EXPECT_GT(retries[0], 0u) << "blind reject must retry";
  EXPECT_LT(retries[1], retries[0]) << "waiting must reduce retries";
}

}  // namespace
}  // namespace bionicdb
