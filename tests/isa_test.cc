#include <gtest/gtest.h>

#include "isa/assembler.h"
#include "isa/instruction.h"
#include "isa/program.h"

namespace bionicdb::isa {
namespace {

TEST(CpValue, EncodeDecode) {
  uint64_t v = EncodeCpValue(CpStatus::kRejected, 0x123456789abcULL);
  EXPECT_EQ(CpValueStatus(v), CpStatus::kRejected);
  EXPECT_EQ(CpValuePayload(v), 0x123456789abcULL);
  EXPECT_EQ(CpValueStatus(EncodeCpValue(CpStatus::kOk, 0)), CpStatus::kOk);
}

TEST(ProgramBuilder, BuildsValidProgram) {
  ProgramBuilder b;
  b.Logic()
      .MovI(1, 5)
      .Search({.table_id = 2, .cp = 0, .key_offset = 8})
      .Yield();
  b.Commit().Ret(2, 0).CommitTxn();
  b.Abort().AbortTxn();
  auto p = b.Build();
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_EQ(p.value().size(), 6u);
  EXPECT_EQ(p.value().logic_entry(), 0u);
  EXPECT_EQ(p.value().commit_entry(), 3u);
  EXPECT_EQ(p.value().abort_entry(), 5u);
  EXPECT_EQ(p.value().cp_regs_used(), 1u);
  EXPECT_GE(p.value().gp_regs_used(), 3u);
}

TEST(ProgramBuilder, LabelResolution) {
  ProgramBuilder b;
  b.Logic();
  b.MovI(1, 0);
  b.Label("loop");
  b.AddI(1, 1, 1);
  b.CmpI(1, 10);
  b.Blt("loop");
  b.Yield();
  b.Commit().CommitTxn();
  b.Abort().AbortTxn();
  auto p = b.Build();
  ASSERT_TRUE(p.ok());
  // BLT must point back at the ADD.
  EXPECT_EQ(p.value().at(3).imm, 1);
}

TEST(ProgramBuilder, UndefinedLabelFails) {
  ProgramBuilder b;
  b.Logic().Jmp("nowhere").Yield();
  b.Commit().CommitTxn();
  b.Abort().AbortTxn();
  auto p = b.Build();
  EXPECT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kNotFound);
}

TEST(ProgramBuilder, MissingSectionsFail) {
  ProgramBuilder b;
  b.Logic().Yield();
  auto p = b.Build();
  EXPECT_FALSE(p.ok());
}

TEST(ProgramValidate, DbInstructionInHandlerRejected) {
  ProgramBuilder b;
  b.Logic().Yield();
  b.Commit().Search({.table_id = 0, .cp = 0}).CommitTxn();
  b.Abort().AbortTxn();
  auto p = b.Build();
  EXPECT_FALSE(p.ok());
}

TEST(ProgramValidate, MissingYieldRejected) {
  ProgramBuilder b;
  b.Logic().Nop();
  b.Commit().CommitTxn();
  b.Abort().AbortTxn();
  auto p = b.Build();
  EXPECT_FALSE(p.ok());
}

TEST(Disassembler, RendersSectionsAndOperands) {
  ProgramBuilder b;
  b.Logic()
      .Search({.table_id = 1, .cp = 3, .key_offset = 16})
      .Yield();
  b.Commit().Ret(1, 3).CommitTxn();
  b.Abort().AbortTxn();
  auto p = b.Build();
  ASSERT_TRUE(p.ok());
  std::string text = p.value().Disassemble();
  EXPECT_NE(text.find(".logic"), std::string::npos);
  EXPECT_NE(text.find(".commit"), std::string::npos);
  EXPECT_NE(text.find(".abort"), std::string::npos);
  EXPECT_NE(text.find("SEARCH t1, key@16, cp3"), std::string::npos);
}

TEST(Assembler, FullProgramRoundTrip) {
  const char* source = R"(
    ; demo stored procedure
    .logic
      MOV   r1, #5
    loop:
      SUB   r1, r1, #1
      CMP   r1, #0
      BGT   loop
      LOAD  r2, [r0 + 16]
      STORE r2, [r0 + 24]
      SEARCH t0, key=0, cp=1
      UPDATE t1, key=8, cp=2, part=r3
      INSERT t2, key=8, payload=32, cp=3, part=1
      SCAN  t3, key=0, out=64, count=50, cp=4
      YIELD
    .commit
      RET r4, cp1
      RET r4, cp2
      COMMIT
    .abort
      ABORT
  )";
  auto p = Assemble(source);
  ASSERT_TRUE(p.ok()) << p.status();
  const Program& prog = p.value();
  EXPECT_EQ(prog.cp_regs_used(), 5u);
  // Instruction classes land where expected.
  EXPECT_EQ(prog.at(0).opcode, Opcode::kMov);
  EXPECT_EQ(prog.at(3).opcode, Opcode::kBgt);
  EXPECT_EQ(prog.at(3).imm, 1);  // loop label
  const Instruction& scan = prog.at(9);
  EXPECT_EQ(scan.opcode, Opcode::kScan);
  EXPECT_EQ(scan.scan_count, 50u);
  EXPECT_EQ(scan.aux_offset, 64);
  const Instruction& ins = prog.at(8);
  EXPECT_EQ(ins.opcode, Opcode::kInsert);
  EXPECT_EQ(ins.partition, 1);
  const Instruction& upd = prog.at(7);
  EXPECT_EQ(upd.part_reg, Reg(3));
}

TEST(Assembler, ReportsLineNumbersOnError) {
  auto p = Assemble(".logic\n  BOGUS r1\n  YIELD\n.commit\n  COMMIT\n.abort\n  ABORT\n");
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.status().message().find("line 2"), std::string::npos);
}

TEST(Assembler, RejectsInstructionBeforeSection) {
  auto p = Assemble("MOV r1, #1\n.logic\nYIELD\n.commit\nCOMMIT\n.abort\nABORT\n");
  EXPECT_FALSE(p.ok());
}

TEST(Assembler, NegativeOffsetsAndImmediates) {
  auto p = Assemble(R"(
    .logic
      MOV r1, #-5
      LOAD r2, [r0 - 8]
      YIELD
    .commit
      COMMIT
    .abort
      ABORT
  )");
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_EQ(p.value().at(0).imm, -5);
  EXPECT_EQ(p.value().at(1).imm, -8);
}

}  // namespace
}  // namespace bionicdb::isa
