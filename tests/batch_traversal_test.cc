// Differential tests for batched level-wise index traversal (DESIGN.md
// section 17): TraversalMode::kBatched must be an OPTIMIZATION, never a
// semantic change. Every suite compares a batched pipeline against the
// per-op baseline on identical inputs:
//  * direct-coprocessor differentials — the result envelopes (status,
//    payload, scan output buffers) must match per-op byte for byte on
//    hash and skiplist tables;
//  * flush-timeout property — a probe never waits in the collector past
//    batch_timeout_cycles: undersized batches still complete promptly
//    and account a timeout flush;
//  * engine-level SmallBank under all three CC schemes — conservation
//    holds and every transaction eventually commits in both traversal
//    modes;
//  * three-simulator-mode identity — a batched engine's stats tree is
//    byte-identical across serial, event-driven and parallel simulation.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/stats.h"
#include "core/engine.h"
#include "db/database.h"
#include "db/tuple.h"
#include "host/driver.h"
#include "index/coprocessor.h"
#include "sim/simulator.h"
#include "workload/smallbank.h"
#include "workload/ycsb.h"

namespace bionicdb {
namespace {

// ---------------------------------------------------------------------------
// Direct-coprocessor harness: one simulator + database + coprocessor per
// traversal mode, fed the same operation list.

struct OpResult {
  isa::CpStatus status;
  uint64_t payload_value;      // tuple payload word (searches) or count (scans)
  std::vector<uint8_t> scan_out;  // scan output buffer bytes
};

class CoprocHarness {
 public:
  CoprocHarness(db::IndexKind kind, index::TraversalMode traversal,
                uint32_t batch_size = 8, uint64_t batch_timeout = 128) {
    sim_ = std::make_unique<sim::Simulator>(sim::TimingConfig());
    db_ = std::make_unique<db::Database>(&sim_->dram(), 1);
    db::TableSchema schema;
    schema.id = 0;
    schema.index = kind;
    schema.key_len = 8;
    schema.payload_len = 8;
    schema.hash_buckets = 1 << 10;
    EXPECT_TRUE(db_->CreateTable(schema).ok());
    index::IndexCoprocessor::Config cfg;
    cfg.traversal = traversal;
    cfg.batch_size = batch_size;
    cfg.batch_timeout_cycles = batch_timeout;
    coproc_ = std::make_unique<index::IndexCoprocessor>(db_.get(), 0, cfg);
    sim_->AddComponent(coproc_.get());
    scratch_ = sim_->dram().Allocate(1 << 20);
  }

  void Preload(uint64_t n_keys, uint64_t stride) {
    for (uint64_t k = 0; k < n_keys; ++k) {
      uint64_t payload = k * 1000 + 7;
      ASSERT_TRUE(db_->LoadU64(0, 0, k * stride, &payload, 8).ok());
    }
  }

  comm::Envelope MakeOp(isa::Opcode op, uint64_t key, uint32_t cp) {
    uint8_t kb[8];
    db::EncodeKeyU64(key, kb);
    sim::Addr ka = scratch_ + scratch_used_;
    scratch_used_ += 8;
    sim_->dram().WriteBytes(ka, kb, 8);
    comm::IndexOp o;
    o.op = op;
    o.table = 0;
    o.ts = 1000;
    o.key_addr = ka;
    o.key_len = 8;
    comm::Header h;
    h.cp_index = cp;
    return comm::Envelope(h, o);
  }

  /// Runs `ops` to completion and returns per-cp_index results, with scan
  /// buffers resolved down to the referenced tuples' payload words so two
  /// harnesses (whose heap addresses may differ) compare logically.
  std::map<uint32_t, OpResult> Run(std::vector<comm::Envelope> ops) {
    size_t next = 0;
    std::map<uint32_t, OpResult> out;
    std::map<uint32_t, const comm::Envelope*> by_cp;
    for (const auto& op : ops) by_cp[op.hdr.cp_index] = &op;
    sim_->RunUntil(
        [&] {
          while (next < ops.size() && coproc_->Submit(ops[next])) ++next;
          auto& q = coproc_->results();
          while (!q.empty()) {
            const comm::Envelope& r = q.front();
            OpResult res;
            res.status = r.index_result().status;
            res.payload_value = 0;
            const comm::Envelope& req = *by_cp.at(r.hdr.cp_index);
            if (req.index_op().op == isa::Opcode::kScan &&
                res.status == isa::CpStatus::kOk) {
              res.payload_value = r.index_result().payload;  // tuples found
              for (uint64_t i = 0; i < res.payload_value; ++i) {
                sim::Addr pa =
                    sim_->dram().Read64(req.index_op().out_buf + 8 * i);
                uint64_t word = sim_->dram().Read64(pa);
                for (int b = 0; b < 8; ++b) {
                  res.scan_out.push_back(uint8_t(word >> (8 * b)));
                }
              }
            } else if (res.status == isa::CpStatus::kOk &&
                       r.index_result().payload != sim::kNullAddr) {
              res.payload_value = sim_->dram().Read64(r.index_result().payload);
            }
            out[r.hdr.cp_index] = std::move(res);
            q.pop_front();
          }
          return out.size() == ops.size();
        },
        /*max_cycles=*/2'000'000);
    return out;
  }

  uint64_t now() const { return sim_->now(); }
  index::IndexCoprocessor* coproc() { return coproc_.get(); }
  sim::Simulator* sim() { return sim_.get(); }
  sim::Addr AllocOut(uint64_t bytes) {
    sim::Addr a = scratch_ + scratch_used_;
    scratch_used_ += bytes;
    return a;
  }

 private:
  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<db::Database> db_;
  std::unique_ptr<index::IndexCoprocessor> coproc_;
  sim::Addr scratch_ = 0;
  uint64_t scratch_used_ = 0;
};

void ExpectSameResults(const std::map<uint32_t, OpResult>& perop,
                       const std::map<uint32_t, OpResult>& batched) {
  ASSERT_EQ(perop.size(), batched.size());
  for (const auto& [cp, a] : perop) {
    auto it = batched.find(cp);
    ASSERT_NE(it, batched.end()) << "cp " << cp << " missing in batched run";
    const OpResult& b = it->second;
    EXPECT_EQ(int(a.status), int(b.status)) << "cp " << cp;
    EXPECT_EQ(a.payload_value, b.payload_value) << "cp " << cp;
    EXPECT_EQ(a.scan_out, b.scan_out) << "cp " << cp;
  }
}

/// The shared op list: point hits, misses, and (skiplist) range scans,
/// dense enough that batched runs exercise sorting, tower dedup and the
/// per-op handoff paths.
std::vector<comm::Envelope> ProbeMix(CoprocHarness* h, bool with_scans) {
  std::vector<comm::Envelope> ops;
  uint32_t cp = 0;
  for (uint64_t i = 0; i < 40; ++i) {
    // Stride-2 preload: even keys hit, odd keys miss.
    ops.push_back(h->MakeOp(isa::Opcode::kSearch, (i * 7) % 100, cp++));
  }
  if (with_scans) {
    for (uint64_t i = 0; i < 8; ++i) {
      comm::Envelope scan = h->MakeOp(isa::Opcode::kScan, i * 11, cp++);
      scan.index_op().scan_count = 6;
      scan.index_op().out_buf = h->AllocOut(8 * 6);
      ops.push_back(scan);
    }
  }
  return ops;
}

TEST(BatchTraversalDifferential, HashResultsMatchPerOp) {
  CoprocHarness perop(db::IndexKind::kHash, index::TraversalMode::kPerOp);
  CoprocHarness batched(db::IndexKind::kHash, index::TraversalMode::kBatched);
  perop.Preload(50, 2);
  batched.Preload(50, 2);
  auto a = perop.Run(ProbeMix(&perop, /*with_scans=*/false));
  auto b = batched.Run(ProbeMix(&batched, /*with_scans=*/false));
  ExpectSameResults(a, b);
}

TEST(BatchTraversalDifferential, SkiplistResultsAndScansMatchPerOp) {
  CoprocHarness perop(db::IndexKind::kSkiplist, index::TraversalMode::kPerOp);
  CoprocHarness batched(db::IndexKind::kSkiplist,
                        index::TraversalMode::kBatched);
  perop.Preload(50, 2);
  batched.Preload(50, 2);
  auto a = perop.Run(ProbeMix(&perop, /*with_scans=*/true));
  auto b = batched.Run(ProbeMix(&batched, /*with_scans=*/true));
  ExpectSameResults(a, b);
}

// ---------------------------------------------------------------------------
// Flush-timeout property: an undersized batch (fewer probes than
// batch_size, no end-of-batch marker) must flush on the collector
// deadline — probes cannot be held hostage waiting for peers that never
// arrive.

void FlushTimeoutCase(db::IndexKind kind, const char* pipe_key) {
  constexpr uint64_t kTimeout = 64;
  CoprocHarness h(kind, index::TraversalMode::kBatched, /*batch_size=*/16,
                  kTimeout);
  h.Preload(50, 2);
  // 3 probes < batch_size 16: only the timeout can flush them.
  std::vector<comm::Envelope> ops;
  for (uint32_t i = 0; i < 3; ++i) {
    ops.push_back(h.MakeOp(isa::Opcode::kSearch, i * 2, i));
  }
  uint64_t start = h.now();
  auto results = h.Run(ops);
  ASSERT_EQ(results.size(), 3u);
  for (const auto& [cp, r] : results) {
    EXPECT_EQ(r.status, isa::CpStatus::kOk) << cp;
  }
  // The only flush trigger here is the deadline: the collector must have
  // waited it out, then completed within the batch's own DRAM round trips
  // (bounded generously for the skiplist's multi-level walk).
  const uint64_t dram = h.sim()->config().dram_latency_cycles;
  EXPECT_GE(h.now() - start, kTimeout);
  EXPECT_LE(h.now() - start, kTimeout + 64 * dram);
  StatsRegistry reg;
  h.coproc()->CollectStats(StatsScope(&reg, "coproc"));
  EXPECT_GE(reg.GetCounter(std::string("coproc/") + pipe_key +
                           "/batch/flush_timeout"),
            1u);
  EXPECT_EQ(reg.GetCounter(std::string("coproc/") + pipe_key +
                           "/batch/flush_full"),
            0u);
}

TEST(BatchTraversalTimeout, HashCollectorFlushesOnDeadline) {
  FlushTimeoutCase(db::IndexKind::kHash, "hash");
}

TEST(BatchTraversalTimeout, SkiplistCollectorFlushesOnDeadline) {
  FlushTimeoutCase(db::IndexKind::kSkiplist, "skiplist");
}

// ---------------------------------------------------------------------------
// Engine-level: SmallBank under every CC scheme, batched vs per-op. The
// batched walk still runs CcUnit::CheckAccess per tuple, so conservation
// must hold and every transaction must eventually commit in both modes.

struct EngineOutcome {
  uint64_t committed = 0;
  uint64_t submitted = 0;
  bool conserved = false;
};

EngineOutcome RunSmallBank(index::TraversalMode traversal, cc::CcMode cc_mode) {
  core::EngineOptions opts;
  opts.n_workers = 2;
  opts.cc_mode = cc_mode;
  opts.coproc.traversal = traversal;
  core::BionicDb engine(opts);
  workload::SmallBankOptions sbo;
  sbo.accounts_per_partition = 100;
  workload::SmallBank sb(&engine, sbo);
  EngineOutcome out;
  EXPECT_TRUE(sb.Setup().ok());
  Rng rng(7);
  host::TxnList list;
  for (uint32_t w = 0; w < opts.n_workers; ++w) {
    for (int i = 0; i < 40; ++i) list.emplace_back(w, sb.MakeTxn(&rng, w));
  }
  auto r = host::RunToCompletion(&engine, list);
  out.committed = r.committed;
  out.submitted = r.submitted;
  out.conserved = sb.VerifyConservation(list);
  return out;
}

TEST(BatchTraversalSmallBank, ConservesUnderAllCcModes) {
  for (cc::CcMode cc_mode :
       {cc::CcMode::kTimestamp, cc::CcMode::kSgt, cc::CcMode::kMvcc}) {
    EngineOutcome perop = RunSmallBank(index::TraversalMode::kPerOp, cc_mode);
    EngineOutcome batched =
        RunSmallBank(index::TraversalMode::kBatched, cc_mode);
    EXPECT_EQ(perop.submitted, batched.submitted) << int(cc_mode);
    EXPECT_EQ(perop.committed, perop.submitted) << int(cc_mode);
    EXPECT_EQ(batched.committed, batched.submitted) << int(cc_mode);
    EXPECT_TRUE(perop.conserved) << int(cc_mode);
    EXPECT_TRUE(batched.conserved) << int(cc_mode);
  }
}

// ---------------------------------------------------------------------------
// Determinism: a batched YCSB update-mix engine must produce a
// byte-identical stats tree in all three simulator modes.

std::string RunBatchedYcsbStats(bool event_driven, uint32_t parallel_hosts) {
  core::EngineOptions opts;
  opts.n_workers = 4;
  opts.coproc.traversal = index::TraversalMode::kBatched;
  opts.timing.event_driven = event_driven;
  opts.timing.parallel_hosts = parallel_hosts;
  core::BionicDb engine(opts);
  workload::YcsbOptions yopts;
  yopts.mode = workload::YcsbOptions::Mode::kBatchPut;
  yopts.records_per_partition = 500;
  yopts.payload_len = 64;
  workload::Ycsb ycsb(&engine, yopts);
  EXPECT_TRUE(ycsb.Setup().ok());
  Rng rng(42);
  host::TxnList list;
  for (uint32_t w = 0; w < opts.n_workers; ++w) {
    for (int i = 0; i < 25; ++i) list.emplace_back(w, ycsb.MakeTxn(&rng, w));
  }
  host::RunToCompletion(&engine, list);
  StatsRegistry reg;
  engine.CollectStats(&reg);
  return reg.ToJson();
}

TEST(BatchTraversalModes, StatsIdenticalAcrossSimulators) {
  std::string serial = RunBatchedYcsbStats(false, 0);
  EXPECT_EQ(serial, RunBatchedYcsbStats(true, 0)) << "event-driven diverged";
  EXPECT_EQ(serial, RunBatchedYcsbStats(false, 4)) << "parallel diverged";
}

}  // namespace
}  // namespace bionicdb
