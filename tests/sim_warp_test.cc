// Differential tests for event-driven cycle skipping (DESIGN.md section
// 10): TimingConfig::event_driven must be invisible in everything except
// wall-clock time. Mock-component tests pin the warp mechanics (clock
// positions, tick counts, Step/RunUntil boundary semantics, busy/idle
// attribution); the engine tests run real workloads — YCSB variants,
// TPC-C, multisite, seeded fault chaos — in both modes and assert the
// final cycle count, commit/abort outcomes and the complete engine stats
// JSON are bit-identical.
#include <gtest/gtest.h>

#include <string>

#include "common/stats.h"
#include "fault/fault.h"
#include "host/driver.h"
#include "sim/component.h"
#include "sim/simulator.h"
#include "workload/tpcc.h"
#include "workload/ycsb.h"

namespace bionicdb {
namespace {

// --- Warp mechanics on mock components ---------------------------------

/// Does "work" on every cycle divisible by `period`; quiescent between.
class PulseComponent : public sim::Component {
 public:
  explicit PulseComponent(uint64_t period)
      : sim::Component("pulse"), period_(period) {}

  void Tick(uint64_t now) override {
    ++real_ticks_;
    if (now % period_ == 0) ++work_done_;
  }
  bool Idle() const override { return false; }
  uint64_t NextWakeCycle(uint64_t now) const override {
    return now - (now % period_) + period_;
  }
  void SkipCycles(uint64_t now, uint64_t count) override {
    (void)now;
    skipped_ += count;
  }

  uint64_t period_;
  uint64_t real_ticks_ = 0;
  uint64_t work_done_ = 0;
  uint64_t skipped_ = 0;
};

sim::TimingConfig EventDriven() {
  sim::TimingConfig t;
  t.event_driven = true;
  return t;
}

TEST(SimWarp, StepCoversEveryCycleExactlyOnce) {
  sim::Simulator base;  // cycle-by-cycle
  PulseComponent base_pulse(50);
  base.AddComponent(&base_pulse);
  base.Step(1000);

  sim::Simulator fast(EventDriven());
  PulseComponent fast_pulse(50);
  fast.AddComponent(&fast_pulse);
  fast.Step(1000);

  EXPECT_EQ(base.now(), 1000u);
  EXPECT_EQ(fast.now(), 1000u);
  EXPECT_EQ(base_pulse.work_done_, fast_pulse.work_done_);
  // Every skipped cycle is accounted exactly once, none ticked twice.
  EXPECT_EQ(fast_pulse.real_ticks_ + fast_pulse.skipped_, 1000u);
  EXPECT_LT(fast_pulse.real_ticks_, 1000u / 50 * 2 + 2);
  EXPECT_GT(fast.warp_stats().skipped_cycles, 0u);
  EXPECT_EQ(base.warp_stats().skipped_cycles, 0u);
  // Busy/idle attribution identical (pulse always reports busy).
  ASSERT_EQ(base.component_cycles().size(), fast.component_cycles().size());
  EXPECT_EQ(base.component_cycles()[0].busy, fast.component_cycles()[0].busy);
  EXPECT_EQ(base.component_cycles()[0].idle, fast.component_cycles()[0].idle);
}

TEST(SimWarp, StepBoundaryNeverOvershoots) {
  // A component whose next wake is far past the Step target: the warp must
  // clamp at the target, not jump to the wake.
  sim::Simulator fast(EventDriven());
  PulseComponent pulse(100'000);
  fast.AddComponent(&pulse);
  fast.Step(123);
  EXPECT_EQ(fast.now(), 123u);
  EXPECT_EQ(pulse.real_ticks_ + pulse.skipped_, 123u);
  fast.Step(1);
  EXPECT_EQ(fast.now(), 124u);
}

TEST(SimWarp, RunUntilBudgetSemanticsMatch) {
  // done() never fires: both modes must exhaust the budget at the same
  // clock position and return false.
  sim::Simulator base;
  PulseComponent base_pulse(64);
  base.AddComponent(&base_pulse);
  EXPECT_FALSE(base.RunUntil([] { return false; }, 500));

  sim::Simulator fast(EventDriven());
  PulseComponent fast_pulse(64);
  fast.AddComponent(&fast_pulse);
  EXPECT_FALSE(fast.RunUntil([] { return false; }, 500));

  EXPECT_EQ(base.now(), 500u);
  EXPECT_EQ(fast.now(), 500u);
  EXPECT_EQ(base_pulse.work_done_, fast_pulse.work_done_);
  EXPECT_EQ(fast_pulse.real_ticks_ + fast_pulse.skipped_, 500u);
}

TEST(SimWarp, DefaultHintKeepsUnauditedComponentsCycleExact) {
  // A component that does NOT override NextWakeCycle must be ticked every
  // single cycle even in event-driven mode (the conservative default).
  class PerCycle : public sim::Component {
   public:
    PerCycle() : sim::Component("per_cycle") {}
    void Tick(uint64_t) override { ++ticks_; }
    bool Idle() const override { return true; }
    uint64_t ticks_ = 0;
  };
  sim::Simulator fast(EventDriven());
  PerCycle c;
  fast.AddComponent(&c);
  fast.Step(200);
  EXPECT_EQ(c.ticks_, 200u);
  EXPECT_EQ(fast.warp_stats().warps, 0u);
}

// --- Engine differential runs ------------------------------------------

struct Outcome {
  host::RunResult run;
  uint64_t final_now = 0;
  std::string stats_json;
  uint64_t warps = 0;
  uint32_t fault_digest = 0;
};

void ExpectIdentical(const Outcome& base, const Outcome& event) {
  EXPECT_EQ(base.run.submitted, event.run.submitted);
  EXPECT_EQ(base.run.committed, event.run.committed);
  EXPECT_EQ(base.run.failed, event.run.failed);
  EXPECT_EQ(base.run.retries, event.run.retries);
  EXPECT_EQ(base.run.cycles, event.run.cycles);
  EXPECT_EQ(base.final_now, event.final_now);
  EXPECT_EQ(base.fault_digest, event.fault_digest);
  // The full stats tree — per-worker cycle breakdowns, component busy/idle,
  // DRAM channel counters, pipeline stall counters — must match to the bit.
  EXPECT_EQ(base.stats_json, event.stats_json);
  // The baseline never warps; the event-driven run is expected to (all
  // these workloads contain DRAM-quiescent spans).
  EXPECT_EQ(base.warps, 0u);
  EXPECT_GT(event.warps, 0u);
}

Outcome Finish(core::BionicDb* engine, host::RunResult run) {
  Outcome out;
  out.run = run;
  out.final_now = engine->now();
  StatsRegistry reg;
  engine->CollectStats(&reg);
  out.stats_json = reg.ToJson();
  out.warps = engine->simulator().warp_stats().warps;
  return out;
}

workload::YcsbOptions SmallYcsb(workload::YcsbOptions::Mode mode) {
  workload::YcsbOptions o;
  o.mode = mode;
  o.records_per_partition = 200;
  o.payload_len = 32;
  o.accesses_per_txn = 4;
  o.updates_per_txn = 2;
  o.scan_len = 10;
  return o;
}

Outcome RunYcsb(bool event_driven, workload::YcsbOptions::Mode mode) {
  core::EngineOptions opts;
  opts.n_workers = 2;
  opts.timing.event_driven = event_driven;
  core::BionicDb engine(opts);
  workload::Ycsb ycsb(&engine, SmallYcsb(mode));
  EXPECT_TRUE(ycsb.Setup().ok());
  Rng rng(11);
  host::TxnList txns;
  for (uint32_t w = 0; w < opts.n_workers; ++w) {
    for (uint64_t i = 0; i < 40; ++i) {
      txns.emplace_back(w, ycsb.MakeTxn(&rng, w));
    }
  }
  return Finish(&engine, host::RunToCompletion(&engine, txns));
}

TEST(SimWarpEngine, YcsbReadOnly) {
  ExpectIdentical(RunYcsb(false, workload::YcsbOptions::Mode::kReadOnly),
                  RunYcsb(true, workload::YcsbOptions::Mode::kReadOnly));
}

TEST(SimWarpEngine, YcsbUpdateMix) {
  ExpectIdentical(RunYcsb(false, workload::YcsbOptions::Mode::kUpdateMix),
                  RunYcsb(true, workload::YcsbOptions::Mode::kUpdateMix));
}

TEST(SimWarpEngine, YcsbScanOnly) {
  ExpectIdentical(RunYcsb(false, workload::YcsbOptions::Mode::kScanOnly),
                  RunYcsb(true, workload::YcsbOptions::Mode::kScanOnly));
}

TEST(SimWarpEngine, YcsbMultisite) {
  ExpectIdentical(RunYcsb(false, workload::YcsbOptions::Mode::kMultisite),
                  RunYcsb(true, workload::YcsbOptions::Mode::kMultisite));
}

Outcome RunTpcc(bool event_driven) {
  core::EngineOptions opts;
  opts.n_workers = 2;
  opts.softcore.max_contexts = 4;
  opts.timing.event_driven = event_driven;
  core::BionicDb engine(opts);
  workload::Tpcc tpcc(&engine, workload::TpccTestOptions());
  EXPECT_TRUE(tpcc.Setup().ok());
  Rng rng(5);
  host::TxnList txns;
  for (uint32_t w = 0; w < opts.n_workers; ++w) {
    for (uint64_t i = 0; i < 30; ++i) {
      txns.emplace_back(w, tpcc.MakeMixed(&rng, w));
    }
  }
  return Finish(&engine, host::RunToCompletion(&engine, txns));
}

TEST(SimWarpEngine, TpccMix) {
  ExpectIdentical(RunTpcc(false), RunTpcc(true));
}

/// Post-refactor differential leg for the dense-activity regime the
/// hot-path work optimizes (bench/sim_speed's "dense" leg shape: low DRAM
/// latency, deep context pool, short transactions): high occupancy keeps
/// the SoA tick loop, ring queues and arena page cache under constant
/// pressure, so any warp-visible divergence they introduce lands here.
Outcome RunDense(bool event_driven) {
  core::EngineOptions opts;
  opts.n_workers = 4;
  opts.softcore.max_contexts = 64;
  opts.timing.dram_latency_cycles = 12;
  opts.timing.event_driven = event_driven;
  core::BionicDb engine(opts);
  workload::YcsbOptions yopts = SmallYcsb(workload::YcsbOptions::Mode::kMultisite);
  yopts.accesses_per_txn = 8;
  workload::Ycsb ycsb(&engine, yopts);
  EXPECT_TRUE(ycsb.Setup().ok());
  Rng rng(23);
  host::TxnList txns;
  for (uint32_t w = 0; w < opts.n_workers; ++w) {
    for (uint64_t i = 0; i < 30; ++i) {
      txns.emplace_back(w, ycsb.MakeTxn(&rng, w));
    }
  }
  return Finish(&engine, host::RunToCompletion(&engine, txns));
}

TEST(SimWarpEngine, DenseActivity) {
  ExpectIdentical(RunDense(false), RunDense(true));
}

Outcome RunChaos(bool event_driven) {
  // Every fault class enabled: DRAM spike/stuck windows, bit flips,
  // channel drop/dup/delay (which auto-enables the reliability layer),
  // worker freezes. The precomputed geometric schedule must fire at the
  // same cycles in both modes (digest compared via ExpectIdentical).
  fault::FaultConfig cfg;
  cfg.seed = 23;
  cfg.dram_spike_rate = 5e-4;
  cfg.dram_spike_extra_cycles = 32;
  cfg.dram_stuck_rate = 1e-4;
  cfg.dram_stuck_duration = 64;
  cfg.bitflip_rate = 2e-4;
  cfg.comm_drop_rate = 2e-3;
  cfg.comm_dup_rate = 1e-3;
  cfg.comm_delay_rate = 1e-3;
  cfg.comm_delay_cycles = 32;
  cfg.worker_freeze_rate = 1e-4;
  cfg.worker_freeze_cycles = 64;

  core::EngineOptions opts;
  opts.n_workers = 2;
  opts.timing.event_driven = event_driven;
  core::BionicDb engine(opts);
  fault::FaultScheduler sched(cfg);
  sched.Attach(&engine);
  workload::Ycsb ycsb(
      &engine, SmallYcsb(workload::YcsbOptions::Mode::kMultisite));
  EXPECT_TRUE(ycsb.Setup().ok());
  Rng rng(23);
  host::TxnList txns;
  for (uint32_t w = 0; w < opts.n_workers; ++w) {
    for (uint64_t i = 0; i < 40; ++i) {
      txns.emplace_back(w, ycsb.MakeTxn(&rng, w));
    }
  }
  host::RunResult run = host::RunToCompletion(&engine, txns);
  EXPECT_GT(sched.events().size(), 0u);
  Outcome out = Finish(&engine, run);
  out.fault_digest = sched.ScheduleDigest();
  sched.Detach();
  return out;
}

TEST(SimWarpEngine, FaultChaos) {
  ExpectIdentical(RunChaos(false), RunChaos(true));
}

}  // namespace
}  // namespace bionicdb
