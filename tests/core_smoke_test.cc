// End-to-end smoke tests: tiny stored procedures driven through the whole
// engine (softcore -> coprocessor -> CC -> commit protocol).
#include <gtest/gtest.h>

#include "core/engine.h"
#include "db/tuple.h"
#include "isa/program.h"

namespace bionicdb {
namespace {

using core::BionicDb;
using core::EngineOptions;
using isa::ProgramBuilder;

db::TableSchema KvSchema() {
  db::TableSchema s;
  s.id = 0;
  s.name = "kv";
  s.index = db::IndexKind::kHash;
  s.key_len = 8;
  s.payload_len = 8;
  s.hash_buckets = 1 << 10;
  return s;
}

// SEARCH key@0 -> cp0; commit returns payload address in r1.
isa::Program SearchProgram() {
  ProgramBuilder b;
  b.Logic()
      .Search({.table_id = 0, .cp = 0, .key_offset = 0})
      .Yield();
  b.Commit().Ret(1, 0).CommitTxn();
  b.Abort().AbortTxn();
  auto p = b.Build();
  EXPECT_TRUE(p.ok()) << p.status();
  return p.value();
}

// INSERT key@0 payload@8 -> cp0.
isa::Program InsertProgram() {
  ProgramBuilder b;
  b.Logic()
      .Insert({.table_id = 0, .cp = 0, .key_offset = 0, .aux_offset = 8})
      .Yield();
  b.Commit().Ret(1, 0).CommitTxn();
  b.Abort().AbortTxn();
  return b.Build().value();
}

TEST(CoreSmoke, SearchFindsBulkLoadedTuple) {
  EngineOptions opts;
  opts.n_workers = 1;
  BionicDb engine(opts);
  ASSERT_TRUE(engine.database().CreateTable(KvSchema()).ok());
  ASSERT_TRUE(engine.RegisterProcedure(0, SearchProgram(), 64).ok());

  uint64_t payload = 0xdeadbeef;
  ASSERT_TRUE(
      engine.database().LoadU64(0, 0, /*key=*/42, &payload, 8).ok());

  auto block = engine.AllocateBlock(0);
  block.WriteKeyU64(0, 42);
  engine.Submit(0, block.base());
  engine.Drain();

  EXPECT_EQ(engine.TotalCommitted(), 1u);
  EXPECT_EQ(engine.TotalAborted(), 0u);
  EXPECT_EQ(block.state(), db::TxnState::kCommitted);
}

TEST(CoreSmoke, SearchMissAborts) {
  EngineOptions opts;
  opts.n_workers = 1;
  BionicDb engine(opts);
  ASSERT_TRUE(engine.database().CreateTable(KvSchema()).ok());
  ASSERT_TRUE(engine.RegisterProcedure(0, SearchProgram(), 64).ok());

  auto block = engine.AllocateBlock(0);
  block.WriteKeyU64(0, 999);  // not loaded
  engine.Submit(0, block.base());
  engine.Drain();

  EXPECT_EQ(engine.TotalCommitted(), 0u);
  EXPECT_EQ(engine.TotalAborted(), 1u);
  EXPECT_EQ(block.state(), db::TxnState::kAborted);
}

TEST(CoreSmoke, InsertThenSearchAcrossTransactions) {
  EngineOptions opts;
  opts.n_workers = 1;
  BionicDb engine(opts);
  ASSERT_TRUE(engine.database().CreateTable(KvSchema()).ok());
  ASSERT_TRUE(engine.RegisterProcedure(0, InsertProgram(), 64).ok());
  ASSERT_TRUE(engine.RegisterProcedure(1, SearchProgram(), 64).ok());

  auto ins = engine.AllocateBlock(0);
  ins.WriteKeyU64(0, 7);
  ins.WriteU64(8, 1234);
  engine.Submit(0, ins.base());
  engine.Drain();
  ASSERT_EQ(engine.TotalCommitted(), 1u);

  // The inserted tuple must be committed and findable functionally...
  sim::Addr t = engine.database().FindU64(0, 0, 7);
  ASSERT_NE(t, sim::kNullAddr);
  db::TupleAccessor acc(engine.database().dram(), t);
  EXPECT_FALSE(acc.dirty());

  // ...and through a subsequent SEARCH transaction.
  auto block = engine.AllocateBlock(1);
  block.WriteKeyU64(0, 7);
  engine.Submit(0, block.base());
  engine.Drain();
  EXPECT_EQ(engine.TotalCommitted(), 2u);
}

TEST(CoreSmoke, ManyTransactionsInterleaved) {
  EngineOptions opts;
  opts.n_workers = 1;
  BionicDb engine(opts);
  ASSERT_TRUE(engine.database().CreateTable(KvSchema()).ok());
  ASSERT_TRUE(engine.RegisterProcedure(0, SearchProgram(), 64).ok());
  for (uint64_t k = 0; k < 200; ++k) {
    uint64_t payload = k * 3;
    ASSERT_TRUE(engine.database().LoadU64(0, 0, k, &payload, 8).ok());
  }
  for (uint64_t k = 0; k < 200; ++k) {
    auto block = engine.AllocateBlock(0);
    block.WriteKeyU64(0, k);
    engine.Submit(0, block.base());
  }
  engine.Drain();
  EXPECT_EQ(engine.TotalCommitted(), 200u);
  EXPECT_GT(engine.worker(0).stats().batches, 1u);
}

TEST(CoreSmoke, WorkerCycleBreakdownIsExhaustive) {
  EngineOptions opts;
  opts.n_workers = 2;
  BionicDb engine(opts);
  ASSERT_TRUE(engine.database().CreateTable(KvSchema()).ok());
  ASSERT_TRUE(engine.RegisterProcedure(0, SearchProgram(), 64).ok());
  for (uint64_t k = 0; k < 100; ++k) {
    uint64_t payload = k;
    ASSERT_TRUE(engine.database().LoadU64(0, k % 2, k, &payload, 8).ok());
  }
  for (uint64_t k = 0; k < 100; ++k) {
    auto block = engine.AllocateBlock(0);
    block.WriteKeyU64(0, k);
    engine.Submit(db::WorkerId(k % 2), block.base());
  }
  engine.Drain();
  ASSERT_EQ(engine.TotalCommitted(), 100u);

  // Every worker cycle must be attributed to exactly one bucket: the
  // breakdown sums to the total with no slack (the 1% tolerance in
  // validate_report is purely defensive).
  StatsRegistry reg;
  engine.CollectStats(&reg);
  for (uint32_t w = 0; w < 2; ++w) {
    std::string base = "workers/" + std::to_string(w) + "/cycles/";
    uint64_t total = reg.GetCounter(base + "total");
    EXPECT_GT(total, 0u) << "worker " << w;
    uint64_t sum = reg.GetCounter(base + "busy") +
                   reg.GetCounter(base + "dram_stall") +
                   reg.GetCounter(base + "hazard_block") +
                   reg.GetCounter(base + "backpressure") +
                   reg.GetCounter(base + "idle");
    EXPECT_EQ(sum, total) << "worker " << w;
    const auto& cycles = engine.worker(w).cycles();
    EXPECT_EQ(cycles.total, total);
  }
  EXPECT_EQ(reg.GetCounter("total_committed"), 100u);
}

}  // namespace
}  // namespace bionicdb
