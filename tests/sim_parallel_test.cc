// Differential tests for host-thread-parallel island execution (DESIGN.md
// section 11): TimingConfig::parallel_hosts must be invisible in everything
// except wall-clock time. Mock-component tests pin the epoch mechanics
// (conservative-lookahead bound, exact cross-barrier delivery cycles,
// quiescence position, busy/idle attribution); the engine tests run real
// workloads — YCSB variants, TPC-C, multisite, seeded fault chaos — against
// the serial per-cycle baseline and assert the final cycle count,
// commit/abort outcomes, fault digests and the complete engine stats JSON
// are bit-identical.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "comm/channels.h"
#include "common/stats.h"
#include "fault/fault.h"
#include "host/driver.h"
#include "sim/component.h"
#include "sim/simulator.h"
#include "workload/tpcc.h"
#include "workload/ycsb.h"

namespace bionicdb {
namespace {

sim::TimingConfig Parallel(uint32_t hosts) {
  sim::TimingConfig t;
  t.parallel_hosts = hosts;
  return t;
}

// --- Epoch mechanics on mock islands ------------------------------------

/// Always-busy block that wants every next cycle: forces the epoch length
/// down to the conservative lookahead bound.
class BusyComponent : public sim::Component {
 public:
  BusyComponent() : sim::Component("busy") {}
  void Tick(uint64_t) override { ++ticks_; }
  bool Idle() const override { return false; }
  uint64_t ticks_ = 0;
};

TEST(SimParallelEpoch, AdvancesNeverExceedLookahead) {
  // With both islands wanting every cycle, the earliest possible island
  // action is from + 1, so every epoch must close by from + W (W = min hop
  // latency): an island can never free-run past the point where a message
  // from a peer could reach it.
  sim::TimingConfig cfg = Parallel(2);
  sim::Simulator sim(cfg);
  sim.dram().ConfigurePartitions(2);
  comm::CommFabric fabric(2, cfg);
  sim.AddComponent(&fabric);
  sim.SetEpochFabric(&fabric, &fabric);
  BusyComponent w0, w1;
  sim.AddComponent(&w0, 0);
  sim.AddComponent(&w1, 1);

  const uint64_t lookahead = fabric.MinHopLatency();
  ASSERT_GE(lookahead, 1u);
  std::vector<std::pair<uint64_t, uint64_t>> epochs;
  sim.set_epoch_observer(
      [&](uint64_t from, uint64_t to) { epochs.emplace_back(from, to); });

  sim.Step(500);
  EXPECT_EQ(sim.now(), 500u);
  ASSERT_FALSE(epochs.empty());
  uint64_t expect_from = 0;
  for (const auto& [from, to] : epochs) {
    EXPECT_EQ(from, expect_from);  // contiguous, gap-free coverage
    EXPECT_GT(to, from);           // forward progress every epoch
    EXPECT_LE(to - from, lookahead);
    expect_from = to;
  }
  EXPECT_EQ(expect_from, 500u);
  // Every cycle ticked exactly once per island block, none lost or doubled
  // across barriers.
  EXPECT_EQ(w0.ticks_, 500u);
  EXPECT_EQ(w1.ticks_, 500u);
  ASSERT_EQ(sim.component_cycles().size(), 3u);
  EXPECT_EQ(sim.component_cycles()[1].busy, 500u);
  EXPECT_EQ(sim.component_cycles()[2].busy, 500u);
}

/// Sends one request at a fixed cycle, then goes idle.
class OneShotSender : public sim::Component {
 public:
  OneShotSender(comm::CommFabric* fabric, uint64_t send_at)
      : sim::Component("sender"), fabric_(fabric), send_at_(send_at) {}
  void Tick(uint64_t now) override {
    if (!sent_ && now >= send_at_) {
      comm::Header h;
      h.origin = 0;
      fabric_->Send(now, 0, 1, comm::Envelope(h, comm::IndexOp{}));
      sent_ = true;
    }
  }
  bool Idle() const override { return sent_; }
  uint64_t NextWakeCycle(uint64_t now) const override {
    return sent_ ? sim::kNeverWakes : std::max(send_at_, now + 1);
  }

 private:
  comm::CommFabric* fabric_;
  uint64_t send_at_;
  bool sent_ = false;
};

/// Drains its request inbox, recording the cycle each packet arrived.
class RecordingReceiver : public sim::Component {
 public:
  explicit RecordingReceiver(comm::CommFabric* fabric)
      : sim::Component("receiver"), fabric_(fabric) {}
  void Tick(uint64_t now) override {
    while (!fabric_->requests(1).empty()) {
      fabric_->requests(1).pop_front();
      arrivals_.push_back(now);
    }
  }
  bool Idle() const override { return fabric_->requests(1).empty(); }
  uint64_t NextWakeCycle(uint64_t now) const override {
    return fabric_->requests(1).empty() ? sim::kNeverWakes : now + 1;
  }

  std::vector<uint64_t> arrivals_;

 private:
  comm::CommFabric* fabric_;
};

struct CrossBarrierRun {
  std::vector<uint64_t> arrivals;
  uint64_t final_now = 0;
  uint64_t hop = 0;
};

CrossBarrierRun RunCrossBarrier(uint32_t parallel_hosts) {
  sim::TimingConfig cfg;
  cfg.parallel_hosts = parallel_hosts;
  sim::Simulator sim(cfg);
  sim.dram().ConfigurePartitions(2);
  comm::CommFabric fabric(2, cfg);
  sim.AddComponent(&fabric);
  sim.SetEpochFabric(&fabric, &fabric);
  OneShotSender sender(&fabric, 10);
  RecordingReceiver receiver(&fabric);
  sim.AddComponent(&sender, 0);
  sim.AddComponent(&receiver, 1);
  EXPECT_TRUE(sim.RunUntilIdle(10'000));
  return {receiver.arrivals_, sim.now(), fabric.HopLatency(0, 1)};
}

TEST(SimParallelEpoch, CrossBarrierDeliveryAtExactSerialCycle) {
  // A message sent at cycle 10 crosses an epoch barrier (the send lands on
  // the wire at EndEpoch, the arrival is planned by the next BeginEpoch)
  // yet must reach the destination island at exactly send + hop, the cycle
  // the serial fabric tick would deliver it.
  CrossBarrierRun serial = RunCrossBarrier(0);
  CrossBarrierRun parallel = RunCrossBarrier(2);
  ASSERT_EQ(serial.arrivals.size(), 1u);
  EXPECT_EQ(serial.arrivals[0], 10 + serial.hop);
  EXPECT_EQ(parallel.arrivals, serial.arrivals);
  // Quiescence lands the clock at the same cycle too: the parallel run's
  // final epoch is truncated at the last active cycle, not its epoch bound.
  EXPECT_EQ(parallel.final_now, serial.final_now);
}

/// Never ticks, never wakes: a quiescent island the epoch scheduler must
/// skip when computing the conservative lookahead bound.
class QuiescentComponent : public sim::Component {
 public:
  QuiescentComponent() : sim::Component("quiet") {}
  void Tick(uint64_t) override {}
  bool Idle() const override { return true; }
  uint64_t NextWakeCycle(uint64_t) const override { return sim::kNeverWakes; }
};

TEST(SimParallelEpoch, PerTierLookaheadBounds) {
  // Three workers in chips {0,1} and {2}: the per-link-pair minimum is the
  // on-chip hop for islands with a same-chip peer, but the full inter-chip
  // hop (one-way link latency plus an on-chip hop at each end) for the
  // island whose every peer is across the cluster tier.
  sim::TimingConfig cfg = Parallel(2);
  comm::CommFabric fabric(3, cfg, comm::Topology::kCrossbar,
                          comm::CommFabric::ClusterConfig{2});
  const uint64_t onchip = fabric.HopLatency(0, 1);
  const uint64_t interchip = fabric.HopLatency(2, 0);
  EXPECT_GT(interchip, onchip);
  EXPECT_GE(interchip, uint64_t(cfg.interchip_latency_cycles));
  EXPECT_EQ(fabric.MinHopLatencyFrom(0), onchip);
  EXPECT_EQ(fabric.MinHopLatencyFrom(1), onchip);
  EXPECT_EQ(fabric.MinHopLatencyFrom(2), interchip);
  // The global minimum (the single-tier bound) is still the on-chip hop.
  EXPECT_EQ(fabric.MinHopLatency(), onchip);
}

TEST(SimParallelEpoch, InterchipTierWidensEpochsForIsolatedIsland) {
  // Only the lone chip-1 island is active; both chip-0 islands are
  // quiescent. A global-minimum lookahead would clamp every epoch to the
  // on-chip hop; the per-link-pair rule knows the soonest cross-island
  // effect must ride the inter-chip tier, so epochs widen to hundreds of
  // cycles — the scaling story of the cluster PDES barrier.
  sim::TimingConfig cfg = Parallel(2);
  sim::Simulator sim(cfg);
  sim.dram().ConfigurePartitions(3);
  comm::CommFabric fabric(3, cfg, comm::Topology::kCrossbar,
                          comm::CommFabric::ClusterConfig{2});
  sim.AddComponent(&fabric);
  sim.SetEpochFabric(&fabric, &fabric);
  QuiescentComponent q0, q1;
  BusyComponent busy;
  sim.AddComponent(&q0, 0);
  sim.AddComponent(&q1, 1);
  sim.AddComponent(&busy, 2);

  const uint64_t onchip = fabric.MinHopLatency();
  const uint64_t interchip = fabric.MinHopLatencyFrom(2);
  std::vector<std::pair<uint64_t, uint64_t>> epochs;
  sim.set_epoch_observer(
      [&](uint64_t from, uint64_t to) { epochs.emplace_back(from, to); });

  const uint64_t kCycles = 4 * interchip;
  sim.Step(kCycles);
  EXPECT_EQ(sim.now(), kCycles);
  EXPECT_EQ(busy.ticks_, kCycles);
  ASSERT_FALSE(epochs.empty());
  uint64_t expect_from = 0;
  uint64_t widest = 0;
  for (const auto& [from, to] : epochs) {
    EXPECT_EQ(from, expect_from);
    EXPECT_GT(to, from);
    EXPECT_LE(to - from, interchip);  // conservative bound still holds
    widest = std::max(widest, to - from);
    expect_from = to;
  }
  EXPECT_EQ(expect_from, kCycles);
  // The whole point: at least one epoch ran past the on-chip bound.
  EXPECT_GT(widest, onchip);
}

CrossBarrierRun RunCrossChipBarrier(uint32_t parallel_hosts) {
  // Two single-worker chips: the one-shot packet rides the inter-chip tier
  // (finite-bandwidth link, one-way latency) across an epoch barrier.
  sim::TimingConfig cfg;
  cfg.parallel_hosts = parallel_hosts;
  sim::Simulator sim(cfg);
  sim.dram().ConfigurePartitions(2);
  comm::CommFabric fabric(2, cfg, comm::Topology::kCrossbar,
                          comm::CommFabric::ClusterConfig{1});
  sim.AddComponent(&fabric);
  sim.SetEpochFabric(&fabric, &fabric);
  OneShotSender sender(&fabric, 10);
  RecordingReceiver receiver(&fabric);
  sim.AddComponent(&sender, 0);
  sim.AddComponent(&receiver, 1);
  EXPECT_TRUE(sim.RunUntilIdle(10'000));
  return {receiver.arrivals_, sim.now(), fabric.HopLatency(0, 1)};
}

TEST(SimParallelEpoch, CrossChipBarrierDeliveryAtExactSerialCycle) {
  // Same exactness contract as the on-chip test, on the inter-chip tier:
  // send + full cross-chip hop, bit-identical between serial and parallel,
  // with the link-occupancy bookkeeping included.
  CrossBarrierRun serial = RunCrossChipBarrier(0);
  CrossBarrierRun parallel = RunCrossChipBarrier(2);
  ASSERT_EQ(serial.arrivals.size(), 1u);
  EXPECT_EQ(serial.arrivals[0], 10 + serial.hop);
  EXPECT_EQ(parallel.arrivals, serial.arrivals);
  EXPECT_EQ(parallel.final_now, serial.final_now);
}

// --- Engine differential runs ------------------------------------------

struct Outcome {
  host::RunResult run;
  uint64_t final_now = 0;
  std::string stats_json;
  uint64_t warps = 0;
  uint32_t fault_digest = 0;
};

void ExpectIdentical(const Outcome& base, const Outcome& parallel) {
  EXPECT_EQ(base.run.submitted, parallel.run.submitted);
  EXPECT_EQ(base.run.committed, parallel.run.committed);
  EXPECT_EQ(base.run.failed, parallel.run.failed);
  EXPECT_EQ(base.run.retries, parallel.run.retries);
  EXPECT_EQ(base.run.cycles, parallel.run.cycles);
  EXPECT_EQ(base.final_now, parallel.final_now);
  EXPECT_EQ(base.fault_digest, parallel.fault_digest);
  // The full stats tree — per-worker cycle breakdowns, component busy/idle,
  // DRAM channel counters, pipeline stall counters — must match to the bit.
  EXPECT_EQ(base.stats_json, parallel.stats_json);
  // The per-cycle baseline never warps; parallel islands free-run
  // event-driven inside epochs and are expected to.
  EXPECT_EQ(base.warps, 0u);
  EXPECT_GT(parallel.warps, 0u);
}

Outcome Finish(core::BionicDb* engine, host::RunResult run) {
  Outcome out;
  out.run = run;
  out.final_now = engine->now();
  StatsRegistry reg;
  engine->CollectStats(&reg);
  out.stats_json = reg.ToJson();
  out.warps = engine->simulator().warp_stats().warps;
  return out;
}

workload::YcsbOptions SmallYcsb(workload::YcsbOptions::Mode mode) {
  workload::YcsbOptions o;
  o.mode = mode;
  o.records_per_partition = 200;
  o.payload_len = 32;
  o.accesses_per_txn = 4;
  o.updates_per_txn = 2;
  o.scan_len = 10;
  return o;
}

Outcome RunYcsb(uint32_t parallel_hosts, workload::YcsbOptions::Mode mode) {
  core::EngineOptions opts;
  opts.n_workers = 2;
  opts.timing.parallel_hosts = parallel_hosts;
  core::BionicDb engine(opts);
  workload::Ycsb ycsb(&engine, SmallYcsb(mode));
  EXPECT_TRUE(ycsb.Setup().ok());
  Rng rng(11);
  host::TxnList txns;
  for (uint32_t w = 0; w < opts.n_workers; ++w) {
    for (uint64_t i = 0; i < 40; ++i) {
      txns.emplace_back(w, ycsb.MakeTxn(&rng, w));
    }
  }
  return Finish(&engine, host::RunToCompletion(&engine, txns));
}

TEST(SimParallelEngine, YcsbReadOnly) {
  ExpectIdentical(RunYcsb(0, workload::YcsbOptions::Mode::kReadOnly),
                  RunYcsb(4, workload::YcsbOptions::Mode::kReadOnly));
}

TEST(SimParallelEngine, YcsbUpdateMix) {
  ExpectIdentical(RunYcsb(0, workload::YcsbOptions::Mode::kUpdateMix),
                  RunYcsb(4, workload::YcsbOptions::Mode::kUpdateMix));
}

TEST(SimParallelEngine, YcsbScanOnly) {
  ExpectIdentical(RunYcsb(0, workload::YcsbOptions::Mode::kScanOnly),
                  RunYcsb(4, workload::YcsbOptions::Mode::kScanOnly));
}

TEST(SimParallelEngine, YcsbMultisite) {
  ExpectIdentical(RunYcsb(0, workload::YcsbOptions::Mode::kMultisite),
                  RunYcsb(4, workload::YcsbOptions::Mode::kMultisite));
}

TEST(SimParallelEngine, ParallelMatchesEventDrivenToo) {
  // Three-way: serial per-cycle == serial event-driven == parallel (the
  // warp suite pins the first equality; this pins all three on the
  // cross-partition-heavy workload).
  Outcome parallel = RunYcsb(4, workload::YcsbOptions::Mode::kMultisite);
  core::EngineOptions opts;
  opts.n_workers = 2;
  opts.timing.event_driven = true;
  core::BionicDb engine(opts);
  workload::Ycsb ycsb(&engine,
                      SmallYcsb(workload::YcsbOptions::Mode::kMultisite));
  EXPECT_TRUE(ycsb.Setup().ok());
  Rng rng(11);
  host::TxnList txns;
  for (uint32_t w = 0; w < opts.n_workers; ++w) {
    for (uint64_t i = 0; i < 40; ++i) {
      txns.emplace_back(w, ycsb.MakeTxn(&rng, w));
    }
  }
  Outcome event = Finish(&engine, host::RunToCompletion(&engine, txns));
  EXPECT_EQ(event.final_now, parallel.final_now);
  EXPECT_EQ(event.stats_json, parallel.stats_json);
}

Outcome RunTpcc(uint32_t parallel_hosts) {
  core::EngineOptions opts;
  opts.n_workers = 2;
  opts.softcore.max_contexts = 4;
  opts.timing.parallel_hosts = parallel_hosts;
  core::BionicDb engine(opts);
  workload::Tpcc tpcc(&engine, workload::TpccTestOptions());
  EXPECT_TRUE(tpcc.Setup().ok());
  Rng rng(5);
  host::TxnList txns;
  for (uint32_t w = 0; w < opts.n_workers; ++w) {
    for (uint64_t i = 0; i < 30; ++i) {
      txns.emplace_back(w, tpcc.MakeMixed(&rng, w));
    }
  }
  return Finish(&engine, host::RunToCompletion(&engine, txns));
}

TEST(SimParallelEngine, TpccMix) {
  ExpectIdentical(RunTpcc(0), RunTpcc(4));
}

Outcome RunChaos(uint32_t parallel_hosts) {
  // Every fault class enabled: DRAM spike/stuck windows, bit flips,
  // channel drop/dup/delay (which auto-enables the reliability layer),
  // worker freezes. The fault scheduler is a global component, replayed at
  // epoch barriers — its RNG draws, injection cycles and digest must match
  // the serial run exactly.
  fault::FaultConfig cfg;
  cfg.seed = 23;
  cfg.dram_spike_rate = 5e-4;
  cfg.dram_spike_extra_cycles = 32;
  cfg.dram_stuck_rate = 1e-4;
  cfg.dram_stuck_duration = 64;
  cfg.bitflip_rate = 2e-4;
  cfg.comm_drop_rate = 2e-3;
  cfg.comm_dup_rate = 1e-3;
  cfg.comm_delay_rate = 1e-3;
  cfg.comm_delay_cycles = 32;
  cfg.worker_freeze_rate = 1e-4;
  cfg.worker_freeze_cycles = 64;

  core::EngineOptions opts;
  opts.n_workers = 2;
  opts.timing.parallel_hosts = parallel_hosts;
  core::BionicDb engine(opts);
  fault::FaultScheduler sched(cfg);
  sched.Attach(&engine);
  workload::Ycsb ycsb(&engine,
                      SmallYcsb(workload::YcsbOptions::Mode::kMultisite));
  EXPECT_TRUE(ycsb.Setup().ok());
  Rng rng(23);
  host::TxnList txns;
  for (uint32_t w = 0; w < opts.n_workers; ++w) {
    for (uint64_t i = 0; i < 40; ++i) {
      txns.emplace_back(w, ycsb.MakeTxn(&rng, w));
    }
  }
  host::RunResult run = host::RunToCompletion(&engine, txns);
  EXPECT_GT(sched.events().size(), 0u);
  Outcome out = Finish(&engine, run);
  out.fault_digest = sched.ScheduleDigest();
  sched.Detach();
  return out;
}

TEST(SimParallelEngine, FaultChaos) {
  ExpectIdentical(RunChaos(0), RunChaos(4));
}

TEST(SimParallelEngine, FourIslandMultisite) {
  // Wider machine: four partitions, four islands, genuine cross-partition
  // traffic on every transaction.
  auto run = [](uint32_t hosts) {
    core::EngineOptions opts;
    opts.n_workers = 4;
    opts.timing.parallel_hosts = hosts;
    core::BionicDb engine(opts);
    workload::Ycsb ycsb(&engine,
                        SmallYcsb(workload::YcsbOptions::Mode::kMultisite));
    EXPECT_TRUE(ycsb.Setup().ok());
    Rng rng(31);
    host::TxnList txns;
    for (uint32_t w = 0; w < opts.n_workers; ++w) {
      for (uint64_t i = 0; i < 25; ++i) {
        txns.emplace_back(w, ycsb.MakeTxn(&rng, w));
      }
    }
    return Finish(&engine, host::RunToCompletion(&engine, txns));
  };
  ExpectIdentical(run(0), run(4));
}

}  // namespace
}  // namespace bionicdb
