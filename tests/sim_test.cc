#include <gtest/gtest.h>

#include "sim/component.h"
#include "sim/memory.h"
#include "sim/simulator.h"

namespace bionicdb::sim {
namespace {

TimingConfig Config() {
  TimingConfig c;
  c.dram_latency_cycles = 25;
  c.dram_channels = 8;
  c.dram_channel_queue_depth = 4;
  return c;
}

TEST(DramFunctional, ReadWriteRoundTrip) {
  DramMemory dram(Config());
  Addr a = dram.Allocate(64);
  EXPECT_NE(a, kNullAddr);
  dram.Write64(a, 0xdeadbeefcafef00dULL);
  EXPECT_EQ(dram.Read64(a), 0xdeadbeefcafef00dULL);
  dram.Write32(a + 8, 0x12345678);
  EXPECT_EQ(dram.Read32(a + 8), 0x12345678u);
  dram.Write8(a + 12, 0xab);
  EXPECT_EQ(dram.Read8(a + 12), 0xab);
}

TEST(DramFunctional, UnwrittenMemoryReadsZero) {
  DramMemory dram(Config());
  EXPECT_EQ(dram.Read64(0x123456), 0u);
}

TEST(DramFunctional, CrossPageCopy) {
  DramMemory dram(Config());
  // Straddle a 64 KiB page boundary.
  Addr a = (1ull << 16) - 17;
  std::vector<uint8_t> src(64);
  for (size_t i = 0; i < src.size(); ++i) src[i] = uint8_t(i + 1);
  dram.WriteBytes(a, src.data(), src.size());
  std::vector<uint8_t> dst(64);
  dram.ReadBytes(a, dst.data(), dst.size());
  EXPECT_EQ(src, dst);
}

TEST(DramFunctional, AllocatorAlignsAndAdvances) {
  DramMemory dram(Config());
  Addr a = dram.Allocate(10, 8);
  Addr b = dram.Allocate(10, 64);
  EXPECT_EQ(a % 8, 0u);
  EXPECT_EQ(b % 64, 0u);
  EXPECT_GE(b, a + 10);
}

TEST(DramTiming, FixedLatencyDelivery) {
  DramMemory dram(Config());
  MemResponseQueue sink;
  Addr a = dram.Allocate(8);
  ASSERT_TRUE(dram.Issue(/*now=*/10, a, false, &sink, 42));
  for (uint64_t t = 11; t < 10 + 25; ++t) {
    dram.Tick(t);
    EXPECT_TRUE(sink.empty()) << "at cycle " << t;
  }
  dram.Tick(10 + 25);
  ASSERT_EQ(sink.size(), 1u);
  EXPECT_EQ(sink.front().cookie, 42u);
  EXPECT_TRUE(dram.Idle());
}

TEST(DramTiming, ChannelBackpressure) {
  TimingConfig cfg = Config();
  cfg.dram_channels = 1;
  cfg.dram_channel_queue_depth = 2;
  DramMemory dram(cfg);
  MemResponseQueue sink;
  ASSERT_TRUE(dram.Issue(0, 0x1000, false, &sink, 0));
  ASSERT_TRUE(dram.Issue(0, 0x1008, false, &sink, 1));
  EXPECT_FALSE(dram.Issue(0, 0x1010, false, &sink, 2));  // queue full
  EXPECT_EQ(dram.backpressure_rejects(), 1u);
  // After completions drain, the channel accepts again.
  for (uint64_t t = 1; t <= 60; ++t) dram.Tick(t);
  EXPECT_TRUE(dram.Issue(60, 0x1010, false, &sink, 2));
}

TEST(DramTiming, SnapshotTakenAtDeliveryTime) {
  DramMemory dram(Config());
  MemResponseQueue sink;
  Addr a = dram.Allocate(8);
  dram.Write64(a, 111);
  ASSERT_TRUE(dram.Issue(0, a, false, &sink, 7, /*snapshot_words=*/1));
  // Overwrite before the read completes: the snapshot must see the value
  // current at service completion (the new one) — service time semantics.
  dram.Write64(a, 222);
  for (uint64_t t = 1; t <= 30; ++t) dram.Tick(t);
  ASSERT_EQ(sink.size(), 1u);
  ASSERT_EQ(sink.front().data.size(), 1u);
  EXPECT_EQ(sink.front().data[0], 222u);
}

TEST(DramTiming, WritesCountSeparately) {
  DramMemory dram(Config());
  dram.Issue(0, 0x1000, true, nullptr, 0);
  dram.Issue(0, 0x2000, false, nullptr, 0);
  EXPECT_EQ(dram.total_writes(), 1u);
  EXPECT_EQ(dram.total_reads(), 1u);
}


TEST(DramTiming, DelayedWriteAppliesAtServiceTime) {
  DramMemory dram(Config());
  MemResponseQueue ack;
  Addr a = dram.Allocate(8);
  dram.Write64(a, 1);
  ASSERT_TRUE(dram.IssueWrite64(/*now=*/0, a, 2, &ack, 5));
  // The functional store must not change until the write completes.
  for (uint64_t t = 1; t < 25; ++t) {
    dram.Tick(t);
    EXPECT_EQ(dram.Read64(a), 1u) << "at cycle " << t;
  }
  dram.Tick(25);
  EXPECT_EQ(dram.Read64(a), 2u);
  ASSERT_EQ(ack.size(), 1u);
  EXPECT_EQ(ack.front().cookie, 5u);
  EXPECT_TRUE(ack.front().is_write);
}

TEST(DramTiming, ReadServicedBeforeDelayedWriteSeesOldValue) {
  // The physical basis of the paper's pipeline hazards: a read whose
  // service completes before an in-flight write's service sees old data.
  TimingConfig cfg = Config();
  DramMemory dram(cfg);
  Addr a = dram.Allocate(8);
  dram.Write64(a, 10);
  MemResponseQueue read_sink, write_ack;
  // Read issued at cycle 0 -> completes at 25. Same-address write issued at
  // cycle 0 right after (same channel) -> starts at 1, completes at 26.
  ASSERT_TRUE(dram.Issue(0, a, false, &read_sink, 0, /*snapshot_words=*/1));
  ASSERT_TRUE(dram.IssueWrite64(0, a, 20, &write_ack, 0));
  for (uint64_t t = 1; t <= 30; ++t) dram.Tick(t);
  ASSERT_EQ(read_sink.size(), 1u);
  EXPECT_EQ(read_sink.front().data[0], 10u);  // old value
  EXPECT_EQ(dram.Read64(a), 20u);             // write landed afterwards
}

/// A block that waits for one memory response then goes idle.
class OneShotReader : public Component {
 public:
  OneShotReader(DramMemory* dram, Addr addr)
      : Component("reader"), dram_(dram), addr_(addr) {}

  void Tick(uint64_t cycle) override {
    if (!issued_) {
      issued_ = dram_->Issue(cycle, addr_, false, &resp_, 0);
      return;
    }
    if (!resp_.empty()) {
      resp_.pop_front();
      done_ = true;
      done_cycle_ = cycle;
    }
  }
  bool Idle() const override { return done_; }
  uint64_t done_cycle() const { return done_cycle_; }

 private:
  DramMemory* dram_;
  Addr addr_;
  MemResponseQueue resp_;
  bool issued_ = false;
  bool done_ = false;
  uint64_t done_cycle_ = 0;
};

TEST(Simulator, RunUntilIdleDrivesComponents) {
  Simulator sim(Config());
  OneShotReader reader(&sim.dram(), 0x4000);
  sim.AddComponent(&reader);
  ASSERT_TRUE(sim.RunUntilIdle(/*max_cycles=*/1000));
  EXPECT_TRUE(reader.Idle());
  // Issue at cycle 1, latency 25, observed at the next tick.
  EXPECT_NEAR(double(reader.done_cycle()), 1 + 25 + 1, 1.0);
}

TEST(Simulator, RunUntilPredicateBudget) {
  Simulator sim(Config());
  EXPECT_FALSE(sim.RunUntil([] { return false; }, 100));
  EXPECT_EQ(sim.now(), 100u);
}

TEST(Simulator, FastForwardMovesClockOnly) {
  Simulator sim(Config());
  sim.FastForward(5000);
  EXPECT_EQ(sim.now(), 5000u);
  EXPECT_EQ(sim.counters().Get("fastforward_backwards_clamped"), 0u);
  sim.FastForward(100);  // never backwards: clamped and counted
  EXPECT_EQ(sim.now(), 5000u);
  EXPECT_EQ(sim.counters().Get("fastforward_backwards_clamped"), 1u);
  sim.FastForward(5000);  // equal target is a no-op, not a violation
  EXPECT_EQ(sim.now(), 5000u);
  EXPECT_EQ(sim.counters().Get("fastforward_backwards_clamped"), 1u);
}

TEST(Simulator, CollectStatsReportsClockAndDramChannels) {
  Simulator sim(Config());
  OneShotReader reader(&sim.dram(), 0x4000);
  sim.AddComponent(&reader);
  ASSERT_TRUE(sim.RunUntilIdle(/*max_cycles=*/1000));

  StatsRegistry reg;
  sim.CollectStats(StatsScope(&reg, "sim"));
  EXPECT_EQ(reg.GetCounter("sim/cycles"), sim.now());
  EXPECT_TRUE(reg.HasPath("sim/components/reader/busy_cycles"));
  EXPECT_TRUE(reg.HasPath("sim/components/reader/idle_cycles"));
  // The read went through channel stats: exactly one issued request
  // somewhere, zero rejects.
  uint64_t issued = 0, rejects = 0;
  for (const auto& [path, v] : reg.counters()) {
    if (path.find("/issued") != std::string::npos) issued += v;
    if (path.find("/rejects") != std::string::npos) rejects += v;
  }
  EXPECT_EQ(issued, 1u);
  EXPECT_EQ(rejects, 0u);
}

TEST(TimingConfig, ThroughputConversion) {
  TimingConfig c;
  c.clock_mhz = 125.0;
  // 125e6 cycles = 1 second.
  EXPECT_DOUBLE_EQ(c.CyclesToSeconds(125'000'000), 1.0);
  EXPECT_DOUBLE_EQ(c.Throughput(1'000'000, 125'000'000), 1e6);
}

}  // namespace
}  // namespace bionicdb::sim
