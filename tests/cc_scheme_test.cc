// Correctness tests for the CC-diversity layer (PR: SGT + MVCC engine
// modes), covering both tiers:
//
//  * Software tier (baseline/cc_scheme.h): every scheme's concurrent
//    histories are checked against a brute-force serial-order oracle —
//    the committed outcome must equal SOME serial replay of the committed
//    transactions. SGT additionally proves its no-false-negative claim:
//    single-threaded workloads never abort, and every cycle abort carries
//    a closed path of actually-recorded edges (EnableTrace evidence).
//    MVCC proves its GC watermark: an open reader pins the version chain;
//    once it finishes, GcSweep reclaims everything but the newest.
//  * Engine tier (cc::CcUnit): SmallBank conserves total assets under all
//    three cc_modes, with identical outcomes across the serial and
//    event-driven simulators (CC units are inside the determinism
//    envelope — the full digest check lives in bench/cc_contention).
#include <algorithm>
#include <cstdint>
#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/cc_scheme.h"
#include "common/random.h"
#include "core/engine.h"
#include "host/driver.h"
#include "workload/smallbank.h"

namespace bionicdb {
namespace {

using baseline::CcDb;
using baseline::CcSchemeKind;
using baseline::CcTableDef;
using baseline::CcTxn;
using baseline::MakeCcDb;

constexpr uint32_t kKeys = 4;
constexpr uint64_t kInit = 100;

/// One oracle transaction: read keys a and b, then write a := v(a) + v(b)
/// + add. The write is a deterministic function of the reads, so a serial
/// replay of the same spec list reproduces exactly what a serializable
/// concurrent execution must have produced.
struct OpSpec {
  uint32_t a;
  uint32_t b;
  uint64_t add;
};

std::unique_ptr<CcDb> MakeLoadedDb(CcSchemeKind kind) {
  auto db = MakeCcDb(kind);
  CcTableDef def;
  def.name = "oracle";
  def.payload_len = 8;
  def.expected_records = 64;
  EXPECT_EQ(db->CreateTable(def), 0u);
  for (uint32_t k = 0; k < kKeys; ++k) {
    uint64_t v = kInit * (k + 1);
    db->Load(0, k, &v);
  }
  return db;
}

/// Runs one spec to commit, retrying dead attempts (every false
/// Read/Write/Commit abandons the attempt and starts over).
void RunSpecToCommit(CcDb* db, const OpSpec& s) {
  for (;;) {
    auto txn = db->Begin();
    uint64_t va = 0, vb = 0;
    if (!txn->Read(0, s.a, &va)) {
      txn->Abort();
      continue;
    }
    if (!txn->Read(0, s.b, &vb)) {
      txn->Abort();
      continue;
    }
    uint64_t out = va + vb + s.add;
    if (!txn->Write(0, s.a, &out)) {
      txn->Abort();
      continue;
    }
    if (txn->Commit()) return;
  }
}

/// True if replaying `specs` serially in the given order yields `want`.
bool SerialReplayMatches(const std::vector<OpSpec>& specs,
                         const std::vector<uint64_t>& want) {
  std::vector<uint64_t> state(kKeys);
  for (uint32_t k = 0; k < kKeys; ++k) state[k] = kInit * (k + 1);
  for (const OpSpec& s : specs) {
    state[s.a] = state[s.a] + state[s.b] + s.add;
  }
  return state == want;
}

/// The oracle proper: runs `per_thread` specs per thread concurrently
/// (retry-until-commit, so every spec commits exactly once), then
/// brute-forces all interleavings of the committed set — some serial order
/// must explain the final committed state, whatever the scheme.
void CheckSerializable(CcSchemeKind kind, uint32_t n_threads,
                       uint32_t per_thread, uint64_t seed) {
  auto db = MakeLoadedDb(kind);
  std::vector<std::vector<OpSpec>> plans(n_threads);
  Rng plan_rng(seed);
  for (uint32_t t = 0; t < n_threads; ++t) {
    for (uint32_t i = 0; i < per_thread; ++i) {
      OpSpec s;
      s.a = uint32_t(plan_rng.NextUint64(kKeys));
      s.b = uint32_t(plan_rng.NextUint64(kKeys));
      s.add = 1 + plan_rng.NextUint64(9);
      plans[t].push_back(s);
    }
  }
  std::vector<std::thread> threads;
  for (uint32_t t = 0; t < n_threads; ++t) {
    threads.emplace_back([&db, &plans, t] {
      for (const OpSpec& s : plans[t]) RunSpecToCommit(db.get(), s);
    });
  }
  for (auto& th : threads) th.join();

  std::vector<uint64_t> final_state(kKeys);
  for (uint32_t k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(db->ReadCommitted(0, k, &final_state[k]));
  }
  // Enumerate every interleaving that preserves each thread's program
  // order (a thread's own commits are serialized by construction) by
  // permuting a thread-id multiset.
  std::vector<uint32_t> order;
  for (uint32_t t = 0; t < n_threads; ++t) {
    for (uint32_t i = 0; i < per_thread; ++i) order.push_back(t);
  }
  std::sort(order.begin(), order.end());
  bool explained = false;
  do {
    std::vector<uint32_t> cursor(n_threads, 0);
    std::vector<OpSpec> serial;
    for (uint32_t t : order) serial.push_back(plans[t][cursor[t]++]);
    if (SerialReplayMatches(serial, final_state)) {
      explained = true;
      break;
    }
  } while (std::next_permutation(order.begin(), order.end()));
  EXPECT_TRUE(explained)
      << baseline::CcSchemeKindName(kind)
      << ": committed state matches no serial order of the committed txns";
}

TEST(CcSchemeOracle, OccHistoriesAreSerializable) {
  CheckSerializable(CcSchemeKind::kOcc, 3, 3, 0xA11CE);
}

TEST(CcSchemeOracle, SgtHistoriesAreSerializable) {
  CheckSerializable(CcSchemeKind::kSgt, 3, 3, 0xB0B);
}

TEST(CcSchemeOracle, MvccHistoriesAreSerializable) {
  CheckSerializable(CcSchemeKind::kMvcc, 3, 3, 0xCAFE);
}

// A single thread can never be part of a dependency cycle, so SGT — whose
// only serialization aborts are cycle aborts — must commit everything
// first try. (OCC/T-O style schemes cannot make this promise.)
TEST(CcSchemeSgt, SingleThreadNeverAborts) {
  auto db = MakeLoadedDb(CcSchemeKind::kSgt);
  Rng rng(7);
  for (uint32_t i = 0; i < 50; ++i) {
    OpSpec s{uint32_t(rng.NextUint64(kKeys)), uint32_t(rng.NextUint64(kKeys)),
             1 + rng.NextUint64(5)};
    auto txn = db->Begin();
    uint64_t va = 0, vb = 0;
    ASSERT_TRUE(txn->Read(0, s.a, &va));
    ASSERT_TRUE(txn->Read(0, s.b, &vb));
    uint64_t out = va + vb + s.add;
    ASSERT_TRUE(txn->Write(0, s.a, &out));
    ASSERT_TRUE(txn->Commit());
  }
  EXPECT_EQ(db->stats().aborts.load(), 0u);
  EXPECT_EQ(db->stats().cycle_aborts.load(), 0u);
}

// No-false-negative evidence: drive the classic write-skew cycle from one
// thread (two interleaved transactions, fully deterministic), then check
// that the abort was justified by a closed cycle whose every edge was
// actually recorded in the dependency graph.
TEST(CcSchemeSgt, AbortsAreWitnessedByRecordedCycles) {
  auto db = MakeLoadedDb(CcSchemeKind::kSgt);
  db->EnableTrace();
  auto t1 = db->Begin();
  auto t2 = db->Begin();
  uint64_t v = 0;
  ASSERT_TRUE(t1->Read(0, 0, &v));  // t1 reads A
  ASSERT_TRUE(t2->Read(0, 1, &v));  // t2 reads B
  uint64_t x = 111;
  ASSERT_TRUE(t1->Write(0, 1, &x));  // rw: t2 -> t1
  // rw: t1 -> t2 would close the cycle; SGT must refuse here (Write or
  // Commit — the reference engine checks eagerly at Write).
  uint64_t y = 222;
  bool wrote = t2->Write(0, 0, &y);
  bool committed = wrote && t2->Commit();
  EXPECT_FALSE(committed);
  if (!wrote) t2->Abort();
  EXPECT_TRUE(t1->Commit());

  ASSERT_GE(db->stats().cycle_aborts.load(), 1u);
  const baseline::SgtTrace* trace = db->trace();
  ASSERT_NE(trace, nullptr);
  ASSERT_GE(trace->abort_cycles.size(), 1u);
  for (const std::vector<uint64_t>& cycle : trace->abort_cycles) {
    // Stored closed: the first node is repeated at the end.
    ASSERT_GE(cycle.size(), 3u);
    EXPECT_EQ(cycle.front(), cycle.back());
    for (size_t i = 0; i + 1 < cycle.size(); ++i) {
      std::pair<uint64_t, uint64_t> edge{cycle[i], cycle[i + 1]};
      EXPECT_NE(std::find(trace->edges.begin(), trace->edges.end(), edge),
                trace->edges.end())
          << "cycle edge " << edge.first << "->" << edge.second
          << " was never recorded in the graph";
    }
  }
}

// GC watermark: an open reader pins every version it might still need
// (the newest committed at-or-before its timestamp plus all newer); once
// it finishes, the sweep reclaims everything but the newest version.
TEST(CcSchemeMvcc, GcRespectsWatermark) {
  auto db = MakeLoadedDb(CcSchemeKind::kMvcc);
  auto reader = db->Begin();  // pins the watermark at its timestamp

  constexpr uint32_t kWrites = 3;
  for (uint32_t i = 0; i < kWrites; ++i) {
    auto w = db->Begin();
    uint64_t v = 1000 + i;
    ASSERT_TRUE(w->Write(0, 0, &v));
    ASSERT_TRUE(w->Commit());
  }
  // Reader began before every write: the newest committed version at its
  // watermark is the loaded one, so nothing below it exists to free.
  EXPECT_EQ(db->GcSweep(), 0u);

  uint64_t seen = 0;
  ASSERT_TRUE(reader->Read(0, 0, &seen));
  EXPECT_EQ(seen, kInit) << "old reader must see the pre-write image";
  ASSERT_TRUE(reader->Commit());

  // Watermark released: only the newest committed version survives.
  EXPECT_EQ(db->GcSweep(), kWrites);
  EXPECT_GE(db->stats().versions_freed.load(), uint64_t{kWrites});
  ASSERT_TRUE(db->ReadCommitted(0, 0, &seen));
  EXPECT_EQ(seen, 1000 + kWrites - 1);
}

// Engine tier: SmallBank conserves total assets under every cc_mode, and
// serial vs event-driven simulation agree on every outcome (commits,
// aborts, final cycle count).
struct EngineOutcome {
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t final_now = 0;
  bool conserved = false;
};

EngineOutcome RunEngineSmallBank(cc::CcMode cc_mode, bool event_driven) {
  core::EngineOptions opts;
  opts.n_workers = 2;
  opts.cc_mode = cc_mode;
  opts.timing.event_driven = event_driven;
  core::BionicDb engine(opts);
  workload::SmallBankOptions sbo;
  sbo.accounts_per_partition = 100;
  sbo.hotspot_fraction = 0.8;
  sbo.hotspot_accounts = 8;
  workload::SmallBank sb(&engine, sbo);
  EXPECT_TRUE(sb.Setup().ok());
  Rng rng(42);
  host::TxnList list;
  for (uint32_t w = 0; w < opts.n_workers; ++w) {
    for (uint32_t i = 0; i < 40; ++i) {
      list.emplace_back(w, sb.MakeTxn(&rng, w));
    }
  }
  host::RunResult r = host::RunToCompletion(&engine, list);
  EngineOutcome out;
  out.committed = r.committed;
  out.aborted = engine.TotalAborted();
  out.final_now = engine.now();
  out.conserved = sb.VerifyConservation(list);
  return out;
}

class CcUnitEngineTest : public ::testing::TestWithParam<cc::CcMode> {};

TEST_P(CcUnitEngineTest, SmallBankConservesAndModesAgree) {
  EngineOutcome serial = RunEngineSmallBank(GetParam(), false);
  EngineOutcome event = RunEngineSmallBank(GetParam(), true);
  EXPECT_TRUE(serial.conserved);
  EXPECT_TRUE(event.conserved);
  EXPECT_EQ(serial.committed, 80u);
  EXPECT_EQ(serial.committed, event.committed);
  EXPECT_EQ(serial.aborted, event.aborted);
  EXPECT_EQ(serial.final_now, event.final_now);
}

INSTANTIATE_TEST_SUITE_P(AllModes, CcUnitEngineTest,
                         ::testing::Values(cc::CcMode::kTimestamp,
                                           cc::CcMode::kSgt,
                                           cc::CcMode::kMvcc));

}  // namespace
}  // namespace bionicdb
