// Open-loop driver tests: seeded arrival determinism across all three
// simulation modes, backpressure/shedding accounting invariants, and the
// quantile-accuracy property tests behind the p50/p99/p999 SLO fields
// (covering the Summary::MergeFrom weighted-merge and tail-histogram
// fixes).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/stats.h"
#include "host/arrival.h"
#include "host/driver.h"
#include "workload/kv.h"

namespace bionicdb::host {
namespace {

// --- Quantile accuracy (stats bugfixes) -----------------------------------

double ExactQuantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  double pos = q * double(values.size() - 1);
  size_t lo = size_t(std::floor(pos));
  size_t hi = size_t(std::ceil(pos));
  double frac = pos - double(lo);
  return values[lo] * (1 - frac) + values[hi] * frac;
}

/// A latency-shaped heavy-tailed series: lognormal-ish via exp of a sum of
/// uniforms, deterministic in `seed`.
std::vector<double> HeavyTailedSeries(size_t n, uint64_t seed, double scale) {
  Rng rng(seed);
  std::vector<double> v;
  v.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    double u = rng.NextDouble() + rng.NextDouble() + rng.NextDouble();
    v.push_back(scale * std::exp(2.0 * u));  // spans ~3 decades
  }
  return v;
}

TEST(SummaryTail, DeepQuantilesTrackExactSortOnLongSeries) {
  const auto values = HeavyTailedSeries(200'000, 11, 100.0);
  Summary s;
  for (double v : values) s.Add(v);
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    const double exact = ExactQuantile(values, q);
    const double est = s.Quantile(q);
    // The bucketed tail path's documented bound, plus the rank-vs-
    // interpolation slack of the exact reference.
    EXPECT_NEAR(est, exact, exact * 2 * Summary::kTailRelativeError)
        << "q=" << q;
  }
}

TEST(SummaryTail, ExactWhileSeriesFitsReservoir) {
  const auto values = HeavyTailedSeries(1'000, 13, 1.0);
  Summary s;
  for (double v : values) s.Add(v);
  for (double q : {0.0, 0.5, 0.99, 0.999, 1.0}) {
    EXPECT_DOUBLE_EQ(s.Quantile(q), ExactQuantile(values, q)) << "q=" << q;
  }
}

TEST(SummaryTail, NegativeSeriesFallsBackToReservoir) {
  Summary s;
  Rng rng(7);
  for (int i = 0; i < 20'000; ++i) {
    s.Add(double(rng.NextUint64(1000)) - 500.0);
  }
  // Sanity only: the reservoir path still produces ordered, in-range
  // quantiles for series the tail histogram cannot bucket.
  EXPECT_GE(s.Quantile(0.999), s.Quantile(0.5));
  EXPECT_GE(s.Quantile(0.5), s.min());
  EXPECT_LE(s.Quantile(0.999), s.max());
}

TEST(SummaryMerge, MergedQuantilesTrackExactSort) {
  // A long cheap series merged with a short expensive one: the pre-fix
  // MergeFrom fed other's <=4096 retained elements through Add as fresh
  // samples, which let the short series dominate the merged reservoir and
  // pulled p50/p99 orders of magnitude off the exact answer.
  const auto big = HeavyTailedSeries(500'000, 17, 10.0);
  const auto small = HeavyTailedSeries(5'000, 19, 10'000.0);
  Summary a;
  for (double v : big) a.Add(v);
  Summary b;
  for (double v : small) b.Add(v);
  a.MergeFrom(b);

  std::vector<double> all = big;
  all.insert(all.end(), small.begin(), small.end());
  EXPECT_EQ(a.count(), all.size());
  for (double q : {0.5, 0.99, 0.999}) {
    const double exact = ExactQuantile(all, q);
    EXPECT_NEAR(a.Quantile(q), exact,
                exact * 2 * Summary::kTailRelativeError)
        << "q=" << q;
  }
}

TEST(SummaryMerge, ReservoirWeightsBySeenCountNotRetainedCount) {
  // B saw 1k cheap samples, A saw 100k expensive ones. After B.MergeFrom(A)
  // the merged reservoir must be ~1% cheap (1k of 101k), not the ~25%+ the
  // pre-fix Add-based merge left behind.
  Summary a;
  for (int i = 0; i < 100'000; ++i) a.Add(1000.0);
  Summary b;
  for (int i = 0; i < 1'000; ++i) b.Add(1.0);
  b.MergeFrom(a);

  size_t cheap = 0;
  for (double v : b.reservoir()) cheap += v < 2.0 ? 1 : 0;
  const double frac = double(cheap) / double(b.reservoir().size());
  EXPECT_LT(frac, 0.05) << "reservoir overweights the merge target";
  EXPECT_GT(frac, 0.0001);  // ... but the minority stream is represented
}

TEST(SummaryMerge, MomentsExactAndEmptyTargetIsExactCopy) {
  Summary big;
  for (int i = 1; i <= 50'000; ++i) big.Add(double(i));
  Summary empty;
  empty.MergeFrom(big);
  EXPECT_EQ(empty.count(), big.count());
  EXPECT_DOUBLE_EQ(empty.sum(), big.sum());
  EXPECT_EQ(empty.reservoir(), big.reservoir());  // bit-exact copy
  EXPECT_DOUBLE_EQ(empty.Quantile(0.999), big.Quantile(0.999));

  Summary a;
  a.Add(5);
  a.Add(15);
  Summary c;
  c.Add(-3);
  a.MergeFrom(c);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.sum(), 17.0);
  EXPECT_DOUBLE_EQ(a.min(), -3.0);
  EXPECT_DOUBLE_EQ(a.max(), 15.0);
}

// --- Arrival processes ----------------------------------------------------

TEST(ArrivalProcess, PoissonHitsOfferedRateAndIsSeedStable) {
  ArrivalOptions opts;
  opts.offered_tps = 1e6;  // at 125 MHz: one arrival per 125 cycles
  opts.seed = 5;
  ArrivalProcess gen(opts, /*clock_mhz=*/125.0);
  ArrivalProcess gen2(opts, /*clock_mhz=*/125.0);
  const int n = 20'000;
  uint64_t last = 0;
  for (int i = 0; i < n; ++i) {
    uint64_t t = gen.Next();
    EXPECT_GE(t, last);
    EXPECT_EQ(t, gen2.Next());  // same seed => same timeline
    last = t;
  }
  const double mean_gap = double(last) / n;
  EXPECT_NEAR(mean_gap, 125.0, 5.0);
}

TEST(ArrivalProcess, BurstyKeepsLongRunRateButClumpsArrivals) {
  ArrivalOptions p;
  p.offered_tps = 1e6;
  p.seed = 9;
  ArrivalOptions b = p;
  b.process = ArrivalOptions::Process::kBursty;

  ArrivalProcess poisson(p, 125.0);
  ArrivalProcess bursty(b, 125.0);
  const int n = 50'000;
  auto gaps = [n](ArrivalProcess* gen) {
    std::vector<double> g;
    uint64_t last = 0;
    for (int i = 0; i < n; ++i) {
      uint64_t t = gen->Next();
      g.push_back(double(t - last));
      last = t;
    }
    return g;
  };
  auto stats = [](const std::vector<double>& g) {
    double mean = 0;
    for (double x : g) mean += x;
    mean /= double(g.size());
    double var = 0;
    for (double x : g) var += (x - mean) * (x - mean);
    var /= double(g.size());
    return std::pair<double, double>(mean, var / (mean * mean));
  };
  auto [pm, pcv2] = stats(gaps(&poisson));
  auto [bm, bcv2] = stats(gaps(&bursty));
  EXPECT_NEAR(bm, pm, 0.15 * pm);  // same long-run offered load
  // Squared coefficient of variation: ~1 for Poisson, well above for MMPP.
  EXPECT_NEAR(pcv2, 1.0, 0.2);
  EXPECT_GT(bcv2, 1.5);
}

// --- Open-loop driver -----------------------------------------------------

struct Fixture {
  explicit Fixture(uint32_t workers, bool event_driven = false,
                   uint32_t parallel_hosts = 0) {
    core::EngineOptions opts;
    opts.n_workers = workers;
    opts.timing.event_driven = event_driven;
    opts.timing.parallel_hosts = parallel_hosts;
    engine = std::make_unique<core::BionicDb>(opts);
    workload::KvOptions kopts;
    kopts.ops_per_txn = 4;
    kopts.preload_per_partition = 200;
    kv = std::make_unique<workload::KvBench>(engine.get(), kopts);
    EXPECT_TRUE(kv->Setup().ok());
  }
  std::unique_ptr<core::BionicDb> engine;
  std::unique_ptr<workload::KvBench> kv;
};

OpenLoopOptions LightLoad() {
  OpenLoopOptions opts;
  opts.arrival.offered_tps = 100e3;
  opts.arrival.seed = 3;
  opts.total_txns = 200;
  return opts;
}

TEST(OpenLoop, LightLoadCommitsEverythingWithArrivalToCommitLatency) {
  Fixture f(2);
  Rng rng(3);
  auto result = RunOpenLoop(f.engine.get(), f.kv->Factory(&rng), LightLoad());
  EXPECT_EQ(result.submitted, 200u);
  EXPECT_EQ(result.admitted, 200u);
  EXPECT_EQ(result.dispatched, 200u);
  EXPECT_EQ(result.committed, 200u);
  EXPECT_EQ(result.shed, 0u);
  EXPECT_EQ(result.failed, 0u);
  EXPECT_EQ(result.latency_cycles.count(), 200u);
  EXPECT_GT(result.latency_cycles.min(), 0.0);
  EXPECT_GT(result.goodput_tps, 0.0);
  EXPECT_LE(result.goodput_tps, result.offered_tps);
}

/// Everything a BENCH report would carry, minus host wall-clock: the
/// cross-mode determinism contract for open-loop runs.
std::string DeterministicRunJson(Fixture* f, const OpenLoopResult& result) {
  StatsRegistry reg;
  f->engine->CollectStats(&reg);
  RecordOpenLoopStats(result, StatsScope(&reg, "run"),
                      /*include_wall_clock=*/false);
  return reg.ToJson();
}

TEST(OpenLoop, SeededArrivalsAreByteIdenticalAcrossAllThreeModes) {
  // Overloaded enough that queueing, shedding and retries all engage.
  OpenLoopOptions opts;
  opts.arrival.offered_tps = 2e6;
  opts.arrival.seed = 21;
  opts.total_txns = 400;
  opts.admission_queue_depth = 16;
  opts.inflight_per_worker = 4;

  auto run = [&](bool event_driven, uint32_t parallel) {
    Fixture f(4, event_driven, parallel);
    Rng rng(21);
    auto result = RunOpenLoop(f.engine.get(), f.kv->Factory(&rng), opts);
    return DeterministicRunJson(&f, result);
  };
  const std::string serial = run(false, 0);
  const std::string event = run(true, 0);
  const std::string parallel = run(false, 4);
  EXPECT_EQ(serial, event);
  EXPECT_EQ(serial, parallel);
}

TEST(OpenLoop, BurstyModeIsDeterministicToo) {
  OpenLoopOptions opts;
  opts.arrival.process = ArrivalOptions::Process::kBursty;
  opts.arrival.offered_tps = 1e6;
  opts.arrival.seed = 33;
  opts.total_txns = 300;
  auto run = [&](bool event_driven) {
    Fixture f(2, event_driven);
    Rng rng(33);
    auto result = RunOpenLoop(f.engine.get(), f.kv->Factory(&rng), opts);
    return DeterministicRunJson(&f, result);
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(OpenLoop, OverloadShedsAtBoundedQueuesAndAccountingCloses) {
  Fixture f(1);
  OpenLoopOptions opts;
  opts.arrival.offered_tps = 5e6;  // far past a single worker's capacity
  opts.arrival.seed = 8;
  opts.total_txns = 500;
  opts.admission_queue_depth = 8;
  opts.inflight_per_worker = 2;
  Rng rng(8);
  auto result = RunOpenLoop(f.engine.get(), f.kv->Factory(&rng), opts);
  EXPECT_EQ(result.submitted, 500u);
  EXPECT_GT(result.shed_queue_full, 0u);
  EXPECT_EQ(result.submitted,
            result.committed + result.failed + result.shed);
  EXPECT_EQ(result.admitted, result.submitted - result.shed_queue_full);
  EXPECT_EQ(result.dispatched, result.committed + result.failed);
  // Queue depth bounds what can ever be waiting: admitted-but-not-yet-
  // dispatched transactions never exceeded depth per worker, so shedding
  // must have started before the whole offered load was absorbed.
  EXPECT_LT(result.committed, result.submitted);
}

TEST(OpenLoop, QueueingLatencyGrowsWithOfferedLoad) {
  auto p50_at = [](double offered_tps) {
    Fixture f(1);
    OpenLoopOptions opts;
    opts.arrival.offered_tps = offered_tps;
    opts.arrival.seed = 12;
    opts.total_txns = 300;
    opts.admission_queue_depth = 256;
    Rng rng(12);
    auto result = RunOpenLoop(f.engine.get(), f.kv->Factory(&rng), opts);
    EXPECT_GT(result.committed, 0u);
    return result.latency_cycles.Quantile(0.5);
  };
  // Arrival-to-commit latency must include admission-queue wait: at high
  // offered load the same service time is dominated by queueing.
  EXPECT_GT(p50_at(2e6), 2 * p50_at(50e3));
}

TEST(OpenLoop, QueueTimeoutShedsSlowWaiters) {
  Fixture f(1);
  OpenLoopOptions opts;
  opts.arrival.offered_tps = 3e6;
  opts.arrival.seed = 14;
  opts.total_txns = 300;
  opts.admission_queue_depth = 128;
  opts.inflight_per_worker = 2;
  opts.queue_timeout_cycles = 2'000;
  Rng rng(14);
  auto result = RunOpenLoop(f.engine.get(), f.kv->Factory(&rng), opts);
  EXPECT_GT(result.shed_timeout, 0u);
  EXPECT_EQ(result.submitted,
            result.committed + result.failed + result.shed);
}

TEST(OpenLoop, ZeroArrivalsReportZeroRatesWithoutDividing) {
  Fixture f(1);
  OpenLoopOptions opts;
  opts.total_txns = 0;
  Rng rng(1);
  auto result = RunOpenLoop(f.engine.get(), f.kv->Factory(&rng), opts);
  EXPECT_EQ(result.cycles, 0u);
  EXPECT_EQ(result.offered_tps, 0.0);
  EXPECT_EQ(result.goodput_tps, 0.0);
  EXPECT_EQ(result.SimCyclesPerSecond(), 0.0);
}

// --- Closed-loop accounting (bugfix) --------------------------------------

TEST(ClosedLoop, DeadlineDropsAreCountedAsFailures) {
  Fixture f(1);
  // Doomed transactions (missing keys) with retries on: the run can only
  // end by exhausting max_cycles, and the pre-fix driver dropped the
  // in-flight transaction without counting it anywhere.
  ClosedLoopOptions opts;
  opts.inflight_per_worker = 2;
  opts.txns_per_worker = 2;
  opts.max_cycles = 150'000;
  auto result = RunClosedLoop(
      f.engine.get(),
      [&](db::WorkerId) {
        db::TxnBlock block =
            f.engine->AllocateBlock(workload::KvBench::kSearchTxn);
        for (int i = 0; i < 4; ++i) block.WriteKeyU64(8 * i, 9'000'000 + i);
        return block.base();
      },
      opts);
  EXPECT_EQ(result.committed, 0u);
  EXPECT_GT(result.submitted, 0u);
  EXPECT_EQ(result.submitted, result.committed + result.failed);
}

TEST(ClosedLoop, SubmittedEqualsCommittedPlusFailedOnCleanRuns) {
  Fixture f(2);
  Rng rng(6);
  ClosedLoopOptions opts;
  opts.inflight_per_worker = 2;
  opts.txns_per_worker = 15;
  auto result = RunClosedLoop(f.engine.get(), f.kv->Factory(&rng), opts);
  EXPECT_EQ(result.submitted, 30u);
  EXPECT_EQ(result.committed, 30u);
  EXPECT_EQ(result.failed, 0u);
}

}  // namespace
}  // namespace bionicdb::host
