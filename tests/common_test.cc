#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <set>

#include "common/hash.h"
#include "common/random.h"
#include "common/ring_queue.h"
#include "common/json.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/table_printer.h"

namespace bionicdb {
namespace {

TEST(Status, OkAndErrors) {
  EXPECT_TRUE(Status::Ok().ok());
  EXPECT_EQ(Status::Ok().ToString(), "OK");
  Status s = Status::NotFound("missing key");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: missing key");
}

TEST(StatusOr, ValueAndError) {
  StatusOr<int> good(42);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);
  StatusOr<int> bad(Status::InvalidArgument("nope"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(Rng, DeterministicAndDistinctSeeds) {
  Rng a(1), b(1), c(2);
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
  }
  bool differs = false;
  Rng a2(1);
  for (int i = 0; i < 10; ++i) {
    if (a2.Next() != c.Next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Rng, BoundedSampling) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextUint64(17), 17u);
    uint64_t v = rng.NextInRange(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Zipfian, SkewsTowardLowRanks) {
  Rng rng(3);
  ZipfianGenerator zipf(1000, 0.99);
  uint64_t low = 0, total = 20000;
  for (uint64_t i = 0; i < total; ++i) {
    if (zipf.Next(&rng) < 10) ++low;
  }
  // With theta=0.99 the top-10 of 1000 items draw far more than 1 % of
  // requests (analytically ~35 %); anything over 15 % proves skew.
  EXPECT_GT(low, total * 15 / 100);
}

TEST(Zipfian, InRange) {
  Rng rng(5);
  ZipfianGenerator zipf(100);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.Next(&rng), 100u);
}

TEST(ScrambledZipfian, SpreadsHotKeys) {
  Rng rng(9);
  ScrambledZipfianGenerator gen(1000);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(gen.Next(&rng));
  // Hot ranks scatter across the keyspace instead of clustering at 0..k.
  EXPECT_GT(*seen.rbegin(), 500u);
}

TEST(Hash, SdbmMatchesReference) {
  // Reference values computed with the classic sdbm loop.
  auto ref = [](const std::string& s) {
    uint64_t h = 0;
    for (unsigned char c : s) h = c + (h << 6) + (h << 16) - h;
    return h;
  };
  for (const char* cs : {"", "a", "key", "bionicdb", "0123456789"}) {
    std::string s(cs);
    EXPECT_EQ(SdbmHash(reinterpret_cast<const uint8_t*>(s.data()), s.size()),
              ref(s))
        << s;
  }
}

TEST(Hash, Sdbm64ConsistentWithBytes) {
  uint64_t key = 0x0123456789abcdefULL;
  uint8_t bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = uint8_t(key >> (8 * i));
  EXPECT_EQ(SdbmHash64(key), SdbmHash(bytes, 8));
}

TEST(RingQueue, FifoAndCapacity) {
  RingQueue<int> q(3);
  EXPECT_TRUE(q.empty());
  EXPECT_TRUE(q.Push(1));
  EXPECT_TRUE(q.Push(2));
  EXPECT_TRUE(q.Push(3));
  EXPECT_TRUE(q.full());
  EXPECT_FALSE(q.Push(4));
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.Pop(), 1);
  EXPECT_EQ(q.Pop(), 2);
  EXPECT_TRUE(q.Push(4));
  EXPECT_EQ(q.Pop(), 3);
  EXPECT_EQ(q.Pop(), 4);
  EXPECT_TRUE(q.empty());
}

TEST(RingQueue, WrapsManyTimes) {
  RingQueue<uint64_t> q(5);
  uint64_t next_in = 0, next_out = 0;
  for (int round = 0; round < 100; ++round) {
    while (q.Push(next_in)) ++next_in;
    while (!q.empty()) {
      EXPECT_EQ(q.Pop(), next_out);
      ++next_out;
    }
  }
  EXPECT_EQ(next_in, next_out);
}

TEST(Summary, BasicMoments) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.Add(i);
  EXPECT_EQ(s.count(), 100u);
  EXPECT_DOUBLE_EQ(s.min(), 1);
  EXPECT_DOUBLE_EQ(s.max(), 100);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
  EXPECT_NEAR(s.Quantile(0.5), 50.5, 1.0);
  EXPECT_NEAR(s.Quantile(0.99), 99, 1.5);
}

TEST(RingQueue, ClearDestroysHeldElements) {
  auto payload = std::make_shared<int>(7);
  RingQueue<std::shared_ptr<int>> q(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.Push(payload));
  EXPECT_EQ(payload.use_count(), 5);
  q.Clear();
  // Clear must release the queued copies immediately, not park them in
  // dead slots until the ring wraps around.
  EXPECT_EQ(payload.use_count(), 1);
  EXPECT_TRUE(q.empty());
  EXPECT_TRUE(q.Push(payload));
  EXPECT_EQ(*q.Pop(), 7);
}

TEST(Summary, QuantileEdgeCases) {
  Summary empty;
  EXPECT_DOUBLE_EQ(empty.Quantile(0.5), 0);

  Summary one;
  one.Add(3.5);
  EXPECT_DOUBLE_EQ(one.Quantile(0.0), 3.5);
  EXPECT_DOUBLE_EQ(one.Quantile(0.5), 3.5);
  EXPECT_DOUBLE_EQ(one.Quantile(1.0), 3.5);

  Summary s;
  for (int i = 1; i <= 10; ++i) s.Add(i);
  EXPECT_DOUBLE_EQ(s.Quantile(0.0), 1);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 10);
  // Out-of-range and NaN inputs clamp instead of indexing out of bounds.
  EXPECT_DOUBLE_EQ(s.Quantile(-0.3), 1);
  EXPECT_DOUBLE_EQ(s.Quantile(7.0), 10);
  EXPECT_DOUBLE_EQ(s.Quantile(std::numeric_limits<double>::quiet_NaN()), 1);
}

TEST(Summary, ReservoirInclusionIsUniform) {
  // Stream 16 full reservoirs' worth of distinct values; with unbiased
  // algorithm-R sampling every element has inclusion probability k/n, so
  // each quarter of the stream should land ~k/4 reservoir slots. The old
  // biased sampler (modulo of a raw LCG draw) over-retained the early
  // prefix by several sigma.
  Summary s;
  const size_t k = 4096;
  const size_t n = 16 * k;
  for (size_t i = 0; i < n; ++i) s.Add(double(i));
  ASSERT_EQ(s.reservoir().size(), k);
  size_t quartile[4] = {0, 0, 0, 0};
  for (double v : s.reservoir()) {
    quartile[size_t(v) / (n / 4)] += 1;
  }
  // Expected 1024 per quartile; sd ~= sqrt(k * 1/4 * 3/4) ~= 28. Allow 6
  // sigma so the deterministic seed never flakes but real bias fails.
  for (size_t q = 0; q < 4; ++q) {
    EXPECT_NEAR(double(quartile[q]), double(k) / 4, 170)
        << "quartile " << q;
  }
  // Reservoir mean must track the stream mean.
  double sum = 0;
  for (double v : s.reservoir()) sum += v;
  EXPECT_NEAR(sum / double(k), s.mean(), double(n) * 0.02);
}

TEST(Histogram, PowerOfTwoBuckets) {
  Histogram h;
  h.Add(0);
  h.Add(1);
  h.Add(2);
  h.Add(3);
  h.Add(1024);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1030u);
  EXPECT_EQ(h.buckets()[0], 1u);  // 0
  EXPECT_EQ(h.buckets()[1], 1u);  // [1,2)
  EXPECT_EQ(h.buckets()[2], 2u);  // [2,4)
  EXPECT_EQ(h.buckets()[11], 1u);  // [1024,2048)
  EXPECT_EQ(Histogram::BucketFloor(11), 1024u);
}

TEST(StatsRegistry, HierarchicalPathsAndScopes) {
  StatsRegistry reg;
  StatsScope root(&reg, "");
  StatsScope w0 = root.Sub("workers").Sub("0");
  w0.SetCounter("cycles/busy", 10);
  w0.SetGauge("tps", 2.5);
  CounterSet set;
  set.Add("stalls", 3);
  w0.MergeCounterSet(set);
  // Root scope must not introduce a leading '/'.
  EXPECT_TRUE(reg.HasPath("workers/0/cycles/busy"));
  EXPECT_EQ(reg.GetCounter("workers/0/cycles/busy"), 10u);
  EXPECT_EQ(reg.GetCounter("workers/0/stalls"), 3u);
  EXPECT_FALSE(reg.HasPath("/workers/0/cycles/busy"));
  reg.AddCounter("workers/0/cycles/busy", 5);
  EXPECT_EQ(reg.GetCounter("workers/0/cycles/busy"), 15u);
}

TEST(StatsRegistry, ToJsonRoundTrips) {
  StatsRegistry reg;
  reg.SetCounter("sim/cycles", 1234);
  reg.SetCounter("workers/0/cycles/busy", 70);
  reg.SetCounter("workers/0/cycles/idle", 30);
  reg.SetGauge("run/tps", 1.5e6);
  Summary lat;
  for (int i = 1; i <= 100; ++i) lat.Add(i);
  reg.SetSummary("run/latency_cycles", lat);
  Histogram h;
  h.Add(7);
  reg.SetHistogram("sim/dram/latency", h);

  auto parsed = json::Value::Parse(reg.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const json::Value& doc = parsed.value();
  ASSERT_NE(doc.FindPath("sim/cycles"), nullptr);
  EXPECT_DOUBLE_EQ(doc.FindPath("sim/cycles")->number(), 1234);
  EXPECT_DOUBLE_EQ(doc.FindPath("workers/0/cycles/busy")->number(), 70);
  EXPECT_DOUBLE_EQ(doc.FindPath("run/tps")->number(), 1.5e6);
  ASSERT_NE(doc.FindPath("run/latency_cycles/p50"), nullptr);
  EXPECT_NEAR(doc.FindPath("run/latency_cycles/p50")->number(), 50.5, 1.0);
  ASSERT_NE(doc.FindPath("sim/dram/latency/buckets/4"), nullptr);
  EXPECT_DOUBLE_EQ(doc.FindPath("sim/dram/latency/buckets/4")->number(), 1);
}

TEST(Json, WriterParserRoundTrip) {
  json::Writer w(2);
  w.BeginObject();
  w.Key("name");
  w.Value(std::string("bench \"x\"\n"));
  w.Key("vals");
  w.BeginArray();
  w.Value(uint64_t{1});
  w.Value(-2.5);
  w.Value(true);
  w.Null();
  w.EndArray();
  w.EndObject();
  auto parsed = json::Value::Parse(w.TakeString());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const json::Value& doc = parsed.value();
  EXPECT_EQ(doc.Find("name")->string(), "bench \"x\"\n");
  ASSERT_EQ(doc.Find("vals")->array().size(), 4u);
  EXPECT_DOUBLE_EQ(doc.Find("vals")->array()[1].number(), -2.5);
  EXPECT_FALSE(json::Value::Parse("{\"unterminated").ok());
  EXPECT_FALSE(json::Value::Parse("").ok());
}

TEST(CounterSet, AddAndGet) {
  CounterSet c;
  c.Add("x");
  c.Add("x", 4);
  EXPECT_EQ(c.Get("x"), 5u);
  EXPECT_EQ(c.Get("missing"), 0u);
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"long-name", "2.50"});
  std::string out = t.ToString();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("long-name"), std::string::npos);
  EXPECT_NE(out.find("2.50"), std::string::npos);
  EXPECT_EQ(TablePrinter::Num(3.14159, 2), "3.14");
}

}  // namespace
}  // namespace bionicdb
