#include <gtest/gtest.h>

#include <set>

#include "common/hash.h"
#include "common/random.h"
#include "common/ring_queue.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/table_printer.h"

namespace bionicdb {
namespace {

TEST(Status, OkAndErrors) {
  EXPECT_TRUE(Status::Ok().ok());
  EXPECT_EQ(Status::Ok().ToString(), "OK");
  Status s = Status::NotFound("missing key");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: missing key");
}

TEST(StatusOr, ValueAndError) {
  StatusOr<int> good(42);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);
  StatusOr<int> bad(Status::InvalidArgument("nope"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(Rng, DeterministicAndDistinctSeeds) {
  Rng a(1), b(1), c(2);
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
  }
  bool differs = false;
  Rng a2(1);
  for (int i = 0; i < 10; ++i) {
    if (a2.Next() != c.Next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Rng, BoundedSampling) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextUint64(17), 17u);
    uint64_t v = rng.NextInRange(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Zipfian, SkewsTowardLowRanks) {
  Rng rng(3);
  ZipfianGenerator zipf(1000, 0.99);
  uint64_t low = 0, total = 20000;
  for (uint64_t i = 0; i < total; ++i) {
    if (zipf.Next(&rng) < 10) ++low;
  }
  // With theta=0.99 the top-10 of 1000 items draw far more than 1 % of
  // requests (analytically ~35 %); anything over 15 % proves skew.
  EXPECT_GT(low, total * 15 / 100);
}

TEST(Zipfian, InRange) {
  Rng rng(5);
  ZipfianGenerator zipf(100);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.Next(&rng), 100u);
}

TEST(ScrambledZipfian, SpreadsHotKeys) {
  Rng rng(9);
  ScrambledZipfianGenerator gen(1000);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(gen.Next(&rng));
  // Hot ranks scatter across the keyspace instead of clustering at 0..k.
  EXPECT_GT(*seen.rbegin(), 500u);
}

TEST(Hash, SdbmMatchesReference) {
  // Reference values computed with the classic sdbm loop.
  auto ref = [](const std::string& s) {
    uint64_t h = 0;
    for (unsigned char c : s) h = c + (h << 6) + (h << 16) - h;
    return h;
  };
  for (const char* cs : {"", "a", "key", "bionicdb", "0123456789"}) {
    std::string s(cs);
    EXPECT_EQ(SdbmHash(reinterpret_cast<const uint8_t*>(s.data()), s.size()),
              ref(s))
        << s;
  }
}

TEST(Hash, Sdbm64ConsistentWithBytes) {
  uint64_t key = 0x0123456789abcdefULL;
  uint8_t bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = uint8_t(key >> (8 * i));
  EXPECT_EQ(SdbmHash64(key), SdbmHash(bytes, 8));
}

TEST(RingQueue, FifoAndCapacity) {
  RingQueue<int> q(3);
  EXPECT_TRUE(q.empty());
  EXPECT_TRUE(q.Push(1));
  EXPECT_TRUE(q.Push(2));
  EXPECT_TRUE(q.Push(3));
  EXPECT_TRUE(q.full());
  EXPECT_FALSE(q.Push(4));
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.Pop(), 1);
  EXPECT_EQ(q.Pop(), 2);
  EXPECT_TRUE(q.Push(4));
  EXPECT_EQ(q.Pop(), 3);
  EXPECT_EQ(q.Pop(), 4);
  EXPECT_TRUE(q.empty());
}

TEST(RingQueue, WrapsManyTimes) {
  RingQueue<uint64_t> q(5);
  uint64_t next_in = 0, next_out = 0;
  for (int round = 0; round < 100; ++round) {
    while (q.Push(next_in)) ++next_in;
    while (!q.empty()) {
      EXPECT_EQ(q.Pop(), next_out);
      ++next_out;
    }
  }
  EXPECT_EQ(next_in, next_out);
}

TEST(Summary, BasicMoments) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.Add(i);
  EXPECT_EQ(s.count(), 100u);
  EXPECT_DOUBLE_EQ(s.min(), 1);
  EXPECT_DOUBLE_EQ(s.max(), 100);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
  EXPECT_NEAR(s.Quantile(0.5), 50.5, 1.0);
  EXPECT_NEAR(s.Quantile(0.99), 99, 1.5);
}

TEST(CounterSet, AddAndGet) {
  CounterSet c;
  c.Add("x");
  c.Add("x", 4);
  EXPECT_EQ(c.Get("x"), 5u);
  EXPECT_EQ(c.Get("missing"), 0u);
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"long-name", "2.50"});
  std::string out = t.ToString();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("long-name"), std::string::npos);
  EXPECT_NE(out.find("2.50"), std::string::npos);
  EXPECT_EQ(TablePrinter::Num(3.14159, 2), "3.14");
}

}  // namespace
}  // namespace bionicdb
