// Tests for the resource/power model: it must reproduce Table 4 exactly
// for the paper's 4-worker configuration and behave sensibly under the
// scaling knobs.
#include <gtest/gtest.h>

#include "power/model.h"

namespace bionicdb::power {
namespace {

TEST(ResourceModel, Table4FourWorkerTotals) {
  DesignConfig cfg;
  cfg.n_workers = 4;
  ResourceModel model(cfg);
  auto rows = model.ModuleBreakdown();
  ASSERT_EQ(rows.size(), 7u);

  auto find = [&](const std::string& name) -> ResourceVector {
    for (const auto& r : rows) {
      if (r.name == name) return r.usage;
    }
    ADD_FAILURE() << "missing module " << name;
    return {};
  };
  // Paper Table 4, row by row.
  EXPECT_EQ(find("Hash").flip_flops, 12932u);
  EXPECT_EQ(find("Hash").luts, 14504u);
  EXPECT_EQ(find("Hash").brams, 24u);
  EXPECT_EQ(find("Skiplist").flip_flops, 27300u);
  EXPECT_EQ(find("Skiplist").luts, 35968u);
  EXPECT_EQ(find("Skiplist").brams, 36u);
  EXPECT_EQ(find("Softcore").luts, 8796u);
  EXPECT_EQ(find("Catalogue").luts, 1964u);
  EXPECT_EQ(find("Communication").luts, 3191u);
  EXPECT_EQ(find("Memory arbiters").luts, 5800u);
  EXPECT_EQ(find("HC-2 modules").luts, 76639u);
}

TEST(ResourceModel, UtilizationMatchesPaper) {
  DesignConfig cfg;
  cfg.n_workers = 4;
  ResourceModel model(cfg);
  Device v5 = Virtex5Lx330();
  // Paper: ~72 % FF, ~70 % LUT; the BRAM rows of Table 4 sum to 191/288 =
  // 66 % (the paper's own "70 %" line rounds the class, not the sum).
  EXPECT_NEAR(model.UtilizationFf(v5), 0.72, 0.03);
  EXPECT_NEAR(model.UtilizationLut(v5), 0.70, 0.03);
  EXPECT_NEAR(model.UtilizationBram(v5), 0.66, 0.03);
  EXPECT_TRUE(model.Fits(v5));
}

TEST(ResourceModel, FourWorkersAreTheVirtex5Limit) {
  // The paper: "merely 200K logic cells, allowing to fit only four
  // BionicDB workers". More should not fit alongside the HC-2 shell.
  DesignConfig cfg;
  cfg.n_workers = 8;
  ResourceModel model(cfg);
  EXPECT_FALSE(model.Fits(Virtex5Lx330()));
}

TEST(ResourceModel, DatacenterPartsFitTensOfWorkers) {
  DesignConfig per_worker;
  per_worker.n_workers = 1;
  uint32_t vu9p = ResourceModel::MaxWorkers(VirtexUltrascalePlusVu9p(),
                                            per_worker);
  uint32_t arria = ResourceModel::MaxWorkers(IntelArria10Gx1150(), per_worker);
  // Paper section 4.6: "tens or hundreds of BionicDB workers".
  EXPECT_GE(vu9p, 30u);
  EXPECT_GE(arria, 20u);
}

TEST(ResourceModel, ExtraScannersGrowSkiplist) {
  DesignConfig base;
  base.n_scanners = 1;
  DesignConfig more;
  more.n_scanners = 5;
  EXPECT_GT(ResourceModel(more).Total().luts,
            ResourceModel(base).Total().luts);
}

TEST(PowerModel, MatchesPaperEstimates) {
  // Paper section 5.8: BionicDB ~11.5 W; 4-chip Xeon E7-4807 TDP = 380 W.
  EXPECT_NEAR(PowerModel::BionicDbWatts(4), 11.5, 0.1);
  EXPECT_DOUBLE_EQ(PowerModel::XeonWatts(4), 380.0);
  // An order of magnitude of power saving.
  EXPECT_GT(PowerModel::XeonWatts(4) / PowerModel::BionicDbWatts(4), 10.0);
}

TEST(PowerModel, PerfPerWatt) {
  EXPECT_DOUBLE_EQ(PowerModel::PerfPerWatt(115000, 11.5), 10000.0);
  EXPECT_DOUBLE_EQ(PowerModel::PerfPerWatt(100, 0), 0.0);
}

}  // namespace
}  // namespace bionicdb::power
