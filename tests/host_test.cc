// Host driver tests: retry semantics, failure accounting, determinism.
#include <gtest/gtest.h>

#include "host/driver.h"
#include "isa/program.h"
#include "common/random.h"
#include "workload/kv.h"

namespace bionicdb::host {
namespace {

struct Fixture {
  explicit Fixture(uint32_t workers = 1) {
    core::EngineOptions opts;
    opts.n_workers = workers;
    engine = std::make_unique<core::BionicDb>(opts);
    workload::KvOptions kopts;
    kopts.ops_per_txn = 4;
    kopts.preload_per_partition = 100;
    kv = std::make_unique<workload::KvBench>(engine.get(), kopts);
    EXPECT_TRUE(kv->Setup().ok());
  }
  std::unique_ptr<core::BionicDb> engine;
  std::unique_ptr<workload::KvBench> kv;
};

TEST(Driver, CountsCommitsAndComputesThroughput) {
  Fixture f;
  Rng rng(1);
  TxnList txns;
  for (int i = 0; i < 5; ++i) {
    txns.emplace_back(0, f.kv->MakeSearchTxn(&rng, 0));
  }
  RunResult r = RunToCompletion(f.engine.get(), txns);
  EXPECT_EQ(r.submitted, 5u);
  EXPECT_EQ(r.committed, 5u);
  EXPECT_EQ(r.failed, 0u);
  EXPECT_GT(r.cycles, 0u);
  EXPECT_GT(r.tps, 0.0);
  EXPECT_DOUBLE_EQ(r.Mtps(), r.tps / 1e6);
}

TEST(Driver, NoRetryLeavesFailuresAborted) {
  Fixture f;
  // A search transaction over missing keys aborts deterministically.
  db::TxnBlock block =
      f.engine->AllocateBlock(workload::KvBench::kSearchTxn);
  for (int i = 0; i < 4; ++i) block.WriteKeyU64(8 * i, 900000 + i);
  RunResult r = RunToCompletion(f.engine.get(), {{0, block.base()}},
                                /*retry_aborts=*/false);
  EXPECT_EQ(r.committed, 0u);
  EXPECT_EQ(r.failed, 1u);
  EXPECT_EQ(block.state(), db::TxnState::kAborted);
}

TEST(Driver, RetryBudgetBoundsDoomedTransactions) {
  Fixture f;
  db::TxnBlock block =
      f.engine->AllocateBlock(workload::KvBench::kSearchTxn);
  for (int i = 0; i < 4; ++i) block.WriteKeyU64(8 * i, 900000 + i);
  RunResult r = RunToCompletion(f.engine.get(), {{0, block.base()}},
                                /*retry_aborts=*/true, /*max_rounds=*/5);
  EXPECT_EQ(r.committed, 0u);
  EXPECT_EQ(r.failed, 1u);
  EXPECT_GE(r.retries, 4u);  // retried every round until the budget
}

TEST(Driver, DeterministicAcrossIdenticalRuns) {
  uint64_t cycles[2];
  for (int run = 0; run < 2; ++run) {
    Fixture f(2);
    Rng rng(7);
    TxnList txns;
    for (uint32_t w = 0; w < 2; ++w) {
      for (int i = 0; i < 10; ++i) {
        txns.emplace_back(w, f.kv->MakeSearchTxn(&rng, w));
      }
    }
    RunResult r = RunToCompletion(f.engine.get(), txns);
    EXPECT_EQ(r.committed, 20u);
    cycles[run] = r.cycles;
  }
  EXPECT_EQ(cycles[0], cycles[1]);  // bit-for-bit replay
}


TEST(ClosedLoop, CommitsTargetAndMeasuresLatency) {
  Fixture f(2);
  Rng rng(3);
  host::ClosedLoopOptions opts;
  opts.inflight_per_worker = 2;
  opts.txns_per_worker = 20;
  auto result = RunClosedLoop(
      f.engine.get(),
      [&](db::WorkerId w) { return f.kv->MakeSearchTxn(&rng, w); }, opts);
  EXPECT_EQ(result.committed, 40u);
  EXPECT_EQ(result.latency_cycles.count(), 40u);
  EXPECT_GT(result.latency_cycles.min(), 0.0);
  // Quantiles are ordered.
  EXPECT_LE(result.latency_cycles.Quantile(0.5),
            result.latency_cycles.Quantile(0.99));
  EXPECT_GT(result.tps, 0.0);
}

TEST(ClosedLoop, HigherLoadRaisesThroughputAndLatency) {
  double tps[2];
  double p50[2];
  for (int i = 0; i < 2; ++i) {
    Fixture f(1);
    Rng rng(4);
    host::ClosedLoopOptions opts;
    opts.inflight_per_worker = i == 0 ? 1 : 8;
    opts.txns_per_worker = 60;
    auto result = RunClosedLoop(
        f.engine.get(),
        [&](db::WorkerId w) { return f.kv->MakeSearchTxn(&rng, w); }, opts);
    EXPECT_EQ(result.committed, 60u);
    tps[i] = result.tps;
    p50[i] = result.latency_cycles.Quantile(0.5);
  }
  EXPECT_GT(tps[1], tps[0]);  // more offered load, more throughput
  EXPECT_GT(p50[1], p50[0]);  // ...and more queueing latency
}

TEST(ClosedLoop, RetriesAbortsInPlace) {
  Fixture f(1);
  // Factory that produces transactions probing a MISSING key every other
  // time would livelock under retry; instead use conflicting updates via
  // the search table: simplest conflict-free check is that a doomed txn
  // respects max_cycles. Probe missing keys with retry ON and a small
  // cycle budget: the driver must terminate.
  host::ClosedLoopOptions opts;
  opts.inflight_per_worker = 1;
  opts.txns_per_worker = 1;
  opts.max_cycles = 200'000;
  auto result = RunClosedLoop(
      f.engine.get(),
      [&](db::WorkerId) {
        db::TxnBlock block =
            f.engine->AllocateBlock(workload::KvBench::kSearchTxn);
        for (int i = 0; i < 4; ++i) block.WriteKeyU64(8 * i, 5'000'000 + i);
        return block.base();
      },
      opts);
  EXPECT_EQ(result.committed, 0u);
  EXPECT_GT(result.retries, 0u);
}

}  // namespace
}  // namespace bionicdb::host
