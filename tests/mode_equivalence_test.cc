// Refactor-equivalence differential suite: the three execution modes —
// serial per-cycle, serial event-driven (cycle skipping), and parallel
// islands (epoch barriers) — must agree byte-for-byte on everything a run
// produces: submitted/committed/failed/retry counts, the final simulated
// clock, the fault-schedule digest, and the COMPLETE engine stats JSON
// (per-worker cycle breakdowns, pipeline stall counters, DRAM channel
// stats, per-message-class fabric counters).
//
// This is the safety net under the typed-envelope message path: any change
// that leaks mode-dependent behaviour into routing, stamping, reliability
// or fault-injection order shows up here as a one-byte JSON diff.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "fault/fault.h"
#include "host/driver.h"
#include "workload/tpcc.h"
#include "workload/ycsb.h"

namespace bionicdb {
namespace {

enum class Mode { kSerial, kEventDriven, kParallel };

const char* ModeName(Mode m) {
  switch (m) {
    case Mode::kSerial: return "serial";
    case Mode::kEventDriven: return "event_driven";
    case Mode::kParallel: return "parallel";
  }
  return "?";
}

core::EngineOptions Options(Mode mode, uint32_t n_workers) {
  core::EngineOptions opts;
  opts.n_workers = n_workers;
  switch (mode) {
    case Mode::kSerial:
      break;
    case Mode::kEventDriven:
      opts.timing.event_driven = true;
      break;
    case Mode::kParallel:
      opts.timing.parallel_hosts = 4;
      break;
  }
  return opts;
}

struct Outcome {
  host::RunResult run;
  uint64_t final_now = 0;
  std::string stats_json;
  uint32_t fault_digest = 0;
};

void ExpectIdentical(const Outcome& base, const Outcome& other,
                     const char* base_name, const char* other_name) {
  SCOPED_TRACE(std::string(base_name) + " vs " + other_name);
  EXPECT_EQ(base.run.submitted, other.run.submitted);
  EXPECT_EQ(base.run.committed, other.run.committed);
  EXPECT_EQ(base.run.failed, other.run.failed);
  EXPECT_EQ(base.run.retries, other.run.retries);
  EXPECT_EQ(base.run.cycles, other.run.cycles);
  EXPECT_EQ(base.final_now, other.final_now);
  EXPECT_EQ(base.fault_digest, other.fault_digest);
  EXPECT_EQ(base.stats_json, other.stats_json);
}

workload::YcsbOptions MultisiteYcsb() {
  workload::YcsbOptions o;
  o.mode = workload::YcsbOptions::Mode::kMultisite;
  o.records_per_partition = 200;
  o.payload_len = 32;
  o.accesses_per_txn = 4;
  o.updates_per_txn = 2;
  o.scan_len = 10;
  return o;
}

Outcome RunYcsbMultisite(Mode mode) {
  core::EngineOptions opts = Options(mode, /*n_workers=*/4);
  core::BionicDb engine(opts);
  workload::Ycsb ycsb(&engine, MultisiteYcsb());
  EXPECT_TRUE(ycsb.Setup().ok());
  Rng rng(17);
  host::TxnList txns;
  for (uint32_t w = 0; w < opts.n_workers; ++w) {
    for (uint64_t i = 0; i < 30; ++i) {
      txns.emplace_back(w, ycsb.MakeTxn(&rng, w));
    }
  }
  Outcome out;
  out.run = host::RunToCompletion(&engine, txns);
  out.final_now = engine.now();
  StatsRegistry reg;
  engine.CollectStats(&reg);
  out.stats_json = reg.ToJson();
  return out;
}

Outcome RunTpccMix(Mode mode) {
  core::EngineOptions opts = Options(mode, /*n_workers=*/2);
  opts.softcore.max_contexts = 4;
  core::BionicDb engine(opts);
  workload::Tpcc tpcc(&engine, workload::TpccTestOptions());
  EXPECT_TRUE(tpcc.Setup().ok());
  Rng rng(29);
  host::TxnList txns;
  for (uint32_t w = 0; w < opts.n_workers; ++w) {
    for (uint64_t i = 0; i < 30; ++i) {
      txns.emplace_back(w, tpcc.MakeMixed(&rng, w));
    }
  }
  Outcome out;
  out.run = host::RunToCompletion(&engine, txns);
  out.final_now = engine.now();
  StatsRegistry reg;
  engine.CollectStats(&reg);
  out.stats_json = reg.ToJson();
  return out;
}

Outcome RunFaultChaos(Mode mode) {
  // Every fault class on: DRAM spikes/stuck windows, bit flips, channel
  // drop/dup/delay (auto-enabling the reliability layer), worker freezes.
  // Every envelope class is exercised under retransmission and dedup.
  fault::FaultConfig cfg;
  cfg.seed = 41;
  cfg.dram_spike_rate = 5e-4;
  cfg.dram_spike_extra_cycles = 32;
  cfg.dram_stuck_rate = 1e-4;
  cfg.dram_stuck_duration = 64;
  cfg.bitflip_rate = 2e-4;
  cfg.comm_drop_rate = 2e-3;
  cfg.comm_dup_rate = 1e-3;
  cfg.comm_delay_rate = 1e-3;
  cfg.comm_delay_cycles = 32;
  cfg.worker_freeze_rate = 1e-4;
  cfg.worker_freeze_cycles = 64;

  core::EngineOptions opts = Options(mode, /*n_workers=*/2);
  core::BionicDb engine(opts);
  fault::FaultScheduler sched(cfg);
  sched.Attach(&engine);
  workload::Ycsb ycsb(&engine, MultisiteYcsb());
  EXPECT_TRUE(ycsb.Setup().ok());
  Rng rng(41);
  host::TxnList txns;
  for (uint32_t w = 0; w < opts.n_workers; ++w) {
    for (uint64_t i = 0; i < 40; ++i) {
      txns.emplace_back(w, ycsb.MakeTxn(&rng, w));
    }
  }
  Outcome out;
  out.run = host::RunToCompletion(&engine, txns);
  EXPECT_GT(sched.events().size(), 0u);
  out.final_now = engine.now();
  StatsRegistry reg;
  engine.CollectStats(&reg);
  out.stats_json = reg.ToJson();
  out.fault_digest = sched.ScheduleDigest();
  sched.Detach();
  return out;
}

/// Post-refactor differential leg for the dense-activity regime the
/// hot-path work optimizes (bench/sim_speed's "dense" leg shape: low DRAM
/// latency, deep context pool, short multisite transactions). High
/// occupancy keeps the SoA tick loop, the ring-buffer queues (fabric
/// wires/inboxes, pipeline stages, softcore input) and the arena page
/// cache under constant pressure in all three modes at once — the
/// configuration most likely to expose a mode-dependent leak in the
/// steady-state allocation-free path.
Outcome RunDenseActivity(Mode mode) {
  core::EngineOptions opts = Options(mode, /*n_workers=*/4);
  opts.softcore.max_contexts = 64;
  opts.timing.dram_latency_cycles = 12;
  core::BionicDb engine(opts);
  workload::YcsbOptions yopts = MultisiteYcsb();
  yopts.accesses_per_txn = 8;
  workload::Ycsb ycsb(&engine, yopts);
  EXPECT_TRUE(ycsb.Setup().ok());
  Rng rng(53);
  host::TxnList txns;
  for (uint32_t w = 0; w < opts.n_workers; ++w) {
    for (uint64_t i = 0; i < 40; ++i) {
      txns.emplace_back(w, ycsb.MakeTxn(&rng, w));
    }
  }
  Outcome out;
  out.run = host::RunToCompletion(&engine, txns);
  out.final_now = engine.now();
  StatsRegistry reg;
  engine.CollectStats(&reg);
  out.stats_json = reg.ToJson();
  return out;
}

template <typename Runner>
void ThreeWay(Runner runner) {
  const Outcome serial = runner(Mode::kSerial);
  const Outcome event = runner(Mode::kEventDriven);
  const Outcome parallel = runner(Mode::kParallel);
  ASSERT_GT(serial.run.committed, 0u);
  ExpectIdentical(serial, event, ModeName(Mode::kSerial),
                  ModeName(Mode::kEventDriven));
  ExpectIdentical(serial, parallel, ModeName(Mode::kSerial),
                  ModeName(Mode::kParallel));
}

TEST(ModeEquivalence, YcsbMultisite) { ThreeWay(RunYcsbMultisite); }

TEST(ModeEquivalence, TpccMix) { ThreeWay(RunTpccMix); }

TEST(ModeEquivalence, FaultChaos) { ThreeWay(RunFaultChaos); }

TEST(ModeEquivalence, DenseActivity) { ThreeWay(RunDenseActivity); }

}  // namespace
}  // namespace bionicdb
