#include <gtest/gtest.h>

#include "cc/visibility.h"
#include "cc/write_set.h"
#include "db/tuple.h"
#include "sim/memory.h"

namespace bionicdb::cc {
namespace {

class VisibilityTest : public ::testing::Test {
 protected:
  VisibilityTest() : dram_(sim::TimingConfig()) {}

  db::TupleAccessor MakeTuple(db::Timestamp wts, db::Timestamp rts,
                              uint8_t flags) {
    uint8_t key[8] = {1};
    sim::Addr a = db::AllocateTuple(&dram_, 0, key, 8, nullptr, 0, wts, flags);
    db::TupleAccessor t(&dram_, a);
    t.set_read_ts(rts);
    return t;
  }

  sim::DramMemory dram_;
};

TEST_F(VisibilityTest, ReadGrantedOnOlderWrite) {
  auto t = MakeTuple(/*wts=*/5, /*rts=*/0, 0);
  auto r = CheckVisibility(&t, /*ts=*/10, AccessMode::kRead);
  EXPECT_EQ(r.status, isa::CpStatus::kOk);
  EXPECT_TRUE(r.header_dirtied);  // read_ts bumped
  EXPECT_EQ(t.read_ts(), 10u);
}

TEST_F(VisibilityTest, ReadRejectedOnNewerWrite) {
  auto t = MakeTuple(/*wts=*/20, /*rts=*/0, 0);
  auto r = CheckVisibility(&t, /*ts=*/10, AccessMode::kRead);
  EXPECT_EQ(r.status, isa::CpStatus::kRejected);
  EXPECT_EQ(t.read_ts(), 0u);  // untouched
}

TEST_F(VisibilityTest, ReadDoesNotLowerReadTs) {
  auto t = MakeTuple(/*wts=*/1, /*rts=*/50, 0);
  auto r = CheckVisibility(&t, /*ts=*/10, AccessMode::kRead);
  EXPECT_EQ(r.status, isa::CpStatus::kOk);
  EXPECT_FALSE(r.header_dirtied);
  EXPECT_EQ(t.read_ts(), 50u);
}

TEST_F(VisibilityTest, WriteRequiresLowerReadAndWriteTimes) {
  auto ok = MakeTuple(5, 5, 0);
  EXPECT_EQ(CheckVisibility(&ok, 10, AccessMode::kUpdate).status,
            isa::CpStatus::kOk);
  EXPECT_TRUE(ok.dirty());

  auto newer_reader = MakeTuple(5, 20, 0);
  EXPECT_EQ(CheckVisibility(&newer_reader, 10, AccessMode::kUpdate).status,
            isa::CpStatus::kRejected);
  EXPECT_FALSE(newer_reader.dirty());

  auto newer_writer = MakeTuple(20, 5, 0);
  EXPECT_EQ(CheckVisibility(&newer_writer, 10, AccessMode::kUpdate).status,
            isa::CpStatus::kRejected);
}

TEST_F(VisibilityTest, DirtyTupleBlindlyRejected) {
  auto t = MakeTuple(1, 1, db::kFlagDirty);
  for (auto mode :
       {AccessMode::kRead, AccessMode::kUpdate, AccessMode::kRemove}) {
    EXPECT_EQ(CheckVisibility(&t, 100, mode).status,
              isa::CpStatus::kRejected);
  }
}

TEST_F(VisibilityTest, TombstoneReportsNotFound) {
  auto t = MakeTuple(1, 1, db::kFlagTombstone);
  EXPECT_EQ(CheckVisibility(&t, 100, AccessMode::kRead).status,
            isa::CpStatus::kNotFound);
  EXPECT_EQ(CheckVisibility(&t, 100, AccessMode::kUpdate).status,
            isa::CpStatus::kNotFound);
}

TEST_F(VisibilityTest, RemoveMarksDirtyAndTombstone) {
  auto t = MakeTuple(1, 1, 0);
  EXPECT_EQ(CheckVisibility(&t, 10, AccessMode::kRemove).status,
            isa::CpStatus::kOk);
  EXPECT_TRUE(t.dirty());
  EXPECT_TRUE(t.tombstone());
}

TEST_F(VisibilityTest, ScanVisibleFiltersDirtyTombstoneAndFuture) {
  auto clean = MakeTuple(5, 0, 0);
  EXPECT_TRUE(ScanVisible(clean, 10));
  EXPECT_FALSE(ScanVisible(clean, 3));  // written after scanner began
  auto dirty = MakeTuple(5, 0, db::kFlagDirty);
  EXPECT_FALSE(ScanVisible(dirty, 10));
  auto dead = MakeTuple(5, 0, db::kFlagTombstone);
  EXPECT_FALSE(ScanVisible(dead, 10));
}

TEST_F(VisibilityTest, RepeatableReadViaTimestamps) {
  // T1 (ts=10) reads; T2 (ts=20) updates; T1 re-reads -> still fine (its
  // ts is older than nothing new committed). If T2 commits first with
  // wts=20, T1's second read must be rejected.
  auto t = MakeTuple(5, 0, 0);
  EXPECT_EQ(CheckVisibility(&t, 10, AccessMode::kRead).status,
            isa::CpStatus::kOk);
  // T2 writes and commits.
  EXPECT_EQ(CheckVisibility(&t, 20, AccessMode::kUpdate).status,
            isa::CpStatus::kOk);
  ApplyCommit(&dram_, {t.addr(), WriteKind::kUpdate}, 20);
  // T1's second read now sees a newer writer -> abort for repeatable read.
  EXPECT_EQ(CheckVisibility(&t, 10, AccessMode::kRead).status,
            isa::CpStatus::kRejected);
}

class WriteSetTest : public VisibilityTest {};

TEST_F(WriteSetTest, CommitPublishesUpdate) {
  auto t = MakeTuple(1, 1, 0);
  CheckVisibility(&t, 10, AccessMode::kUpdate);
  ApplyCommit(&dram_, {t.addr(), WriteKind::kUpdate}, 10);
  EXPECT_FALSE(t.dirty());
  EXPECT_EQ(t.write_ts(), 10u);
}

TEST_F(WriteSetTest, CommitKeepsTombstoneOnRemove) {
  auto t = MakeTuple(1, 1, 0);
  CheckVisibility(&t, 10, AccessMode::kRemove);
  ApplyCommit(&dram_, {t.addr(), WriteKind::kRemove}, 10);
  EXPECT_FALSE(t.dirty());
  EXPECT_TRUE(t.tombstone());
}

TEST_F(WriteSetTest, AbortRollsBackEachKind) {
  auto upd = MakeTuple(3, 1, 0);
  CheckVisibility(&upd, 10, AccessMode::kUpdate);
  ApplyAbort(&dram_, {upd.addr(), WriteKind::kUpdate});
  EXPECT_FALSE(upd.dirty());
  EXPECT_EQ(upd.write_ts(), 3u);  // old version intact

  auto rem = MakeTuple(3, 1, 0);
  CheckVisibility(&rem, 10, AccessMode::kRemove);
  ApplyAbort(&dram_, {rem.addr(), WriteKind::kRemove});
  EXPECT_FALSE(rem.dirty());
  EXPECT_FALSE(rem.tombstone());  // resurrection

  auto ins = MakeTuple(0, 0, db::kFlagDirty);  // freshly inserted
  ApplyAbort(&dram_, {ins.addr(), WriteKind::kInsert});
  EXPECT_FALSE(ins.dirty());
  EXPECT_TRUE(ins.tombstone());  // aborted insert becomes invisible
}

}  // namespace
}  // namespace bionicdb::cc
