#include <gtest/gtest.h>

#include "comm/channels.h"

namespace bionicdb::comm {
namespace {

sim::TimingConfig Cfg() { return sim::TimingConfig(); }

index::DbOp Op(uint32_t cp) {
  index::DbOp op;
  op.cp_index = cp;
  return op;
}

TEST(CommFabric, CrossbarDeliversAfterHopLatency) {
  CommFabric fabric(4, Cfg(), Topology::kCrossbar);
  fabric.SendRequest(/*now=*/10, /*src=*/0, /*dst=*/2, Op(7));
  fabric.Tick(11);
  EXPECT_TRUE(fabric.requests(2).empty());
  fabric.Tick(12);
  EXPECT_TRUE(fabric.requests(2).empty());
  fabric.Tick(13);  // 3-cycle hop
  ASSERT_EQ(fabric.requests(2).size(), 1u);
  EXPECT_EQ(fabric.requests(2).front().cp_index, 7u);
  EXPECT_TRUE(fabric.requests(0).empty());
  EXPECT_TRUE(fabric.requests(1).empty());
}

TEST(CommFabric, RoundTripIsSixCycles) {
  // Table 3: one request/response pair = 2 x 24 ns = 6 cycles at 125 MHz.
  CommFabric fabric(2, Cfg());
  EXPECT_EQ(fabric.HopLatency(0, 1) + fabric.HopLatency(1, 0), 6u);
}

TEST(CommFabric, ResponsesRouteToInitiator) {
  CommFabric fabric(3, Cfg());
  index::DbResult r;
  r.cp_index = 9;
  fabric.SendResponse(0, /*src=*/2, /*dst=*/1, r);
  fabric.Tick(100);
  ASSERT_EQ(fabric.responses(1).size(), 1u);
  EXPECT_EQ(fabric.responses(1).front().cp_index, 9u);
}

TEST(CommFabric, FifoPerDestination) {
  CommFabric fabric(2, Cfg());
  for (uint32_t i = 0; i < 5; ++i) fabric.SendRequest(i, 0, 1, Op(i));
  fabric.Tick(100);
  ASSERT_EQ(fabric.requests(1).size(), 5u);
  for (uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(fabric.requests(1)[i].cp_index, i);
  }
}

TEST(CommFabric, RingLatencyScalesWithDistance) {
  CommFabric ring(8, Cfg(), Topology::kRing);
  // Neighbours: one hop. Opposite side: four hops. Shortest direction wins.
  EXPECT_EQ(ring.HopLatency(0, 1), 3u);
  EXPECT_EQ(ring.HopLatency(0, 4), 12u);
  EXPECT_EQ(ring.HopLatency(0, 7), 3u);  // wraps backwards
  EXPECT_EQ(ring.HopLatency(6, 2), 12u);

  CommFabric xbar(8, Cfg(), Topology::kCrossbar);
  EXPECT_EQ(xbar.HopLatency(0, 4), 3u);  // distance-independent
}

TEST(CommFabric, IdleReflectsWireAndInboxes) {
  CommFabric fabric(2, Cfg());
  EXPECT_TRUE(fabric.Idle());
  fabric.SendRequest(0, 0, 1, Op(0));
  EXPECT_FALSE(fabric.Idle());
  fabric.Tick(50);
  EXPECT_FALSE(fabric.Idle());  // sitting in the inbox
  fabric.requests(1).clear();
  EXPECT_TRUE(fabric.Idle());
}

TEST(MessagingLatencyModel, ReproducesTable3) {
  MessagingLatencyModel model{Cfg()};
  // On-chip: 24 ns primitive, 48 ns per request/response exchange.
  EXPECT_DOUBLE_EQ(model.OnchipPrimitive(), 24.0);
  EXPECT_DOUBLE_EQ(model.OnchipRoundTrip(), 48.0);
  // Software via shared L3: 20 / 40 ns.
  EXPECT_DOUBLE_EQ(model.L3Primitive(), 20.0);
  EXPECT_DOUBLE_EQ(model.L3RoundTrip(), 40.0);
  // Software via DDR3: 80 / 320 ns (two iterations of read + write).
  EXPECT_DOUBLE_EQ(model.Ddr3Primitive(), 80.0);
  EXPECT_DOUBLE_EQ(model.Ddr3RoundTrip(), 320.0);
}


TEST(CommFabric, MultiNodeCrossingPaysNetworkLatency) {
  CommFabric::ClusterConfig cluster;
  cluster.workers_per_node = 4;
  cluster.inter_node_cycles = 250;
  CommFabric fabric(8, Cfg(), Topology::kCrossbar, cluster);
  // Intra-node: plain on-chip hop.
  EXPECT_EQ(fabric.HopLatency(0, 3), 3u);
  EXPECT_EQ(fabric.HopLatency(5, 7), 3u);
  // Node-crossing: network + on-chip at both ends.
  EXPECT_EQ(fabric.HopLatency(0, 4), 250u + 6u);
  EXPECT_EQ(fabric.HopLatency(7, 1), 250u + 6u);
}

TEST(CommFabric, ShortPathMessagesOvertakeLongOnes) {
  CommFabric::ClusterConfig cluster;
  cluster.workers_per_node = 2;
  cluster.inter_node_cycles = 100;
  CommFabric fabric(4, Cfg(), Topology::kCrossbar, cluster);
  fabric.SendRequest(0, /*src=*/2, /*dst=*/1, Op(1));  // cross-node, slow
  fabric.SendRequest(0, /*src=*/0, /*dst=*/1, Op(2));  // on-chip, fast
  fabric.Tick(10);
  ASSERT_EQ(fabric.requests(1).size(), 1u);
  EXPECT_EQ(fabric.requests(1).front().cp_index, 2u);  // fast one first
  fabric.Tick(200);
  EXPECT_EQ(fabric.requests(1).size(), 2u);
}

}  // namespace
}  // namespace bionicdb::comm
