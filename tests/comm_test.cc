#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "comm/channels.h"

namespace bionicdb::comm {
namespace {

sim::TimingConfig Cfg() { return sim::TimingConfig(); }

/// A request envelope whose header carries `cp` for identification.
Envelope Op(uint32_t cp) {
  Header h;
  h.cp_index = cp;
  return Envelope(h, IndexOp{});
}

/// A response envelope (kIndexResult) with the same identification.
Envelope Result(uint32_t cp) {
  Header h;
  h.cp_index = cp;
  return Envelope(h, IndexResult{});
}

TEST(CommFabric, CrossbarDeliversAfterHopLatency) {
  CommFabric fabric(4, Cfg(), Topology::kCrossbar);
  fabric.Send(/*now=*/10, /*src=*/0, /*dst=*/2, Op(7));
  fabric.Tick(11);
  EXPECT_TRUE(fabric.requests(2).empty());
  fabric.Tick(12);
  EXPECT_TRUE(fabric.requests(2).empty());
  fabric.Tick(13);  // 3-cycle hop
  ASSERT_EQ(fabric.requests(2).size(), 1u);
  EXPECT_EQ(fabric.requests(2).front().hdr.cp_index, 7u);
  EXPECT_TRUE(fabric.requests(0).empty());
  EXPECT_TRUE(fabric.requests(1).empty());
}

TEST(CommFabric, RoundTripIsSixCycles) {
  // Table 3: one request/response pair = 2 x 24 ns = 6 cycles at 125 MHz.
  CommFabric fabric(2, Cfg());
  EXPECT_EQ(fabric.HopLatency(0, 1) + fabric.HopLatency(1, 0), 6u);
}

TEST(CommFabric, ResponsesRouteToInitiator) {
  CommFabric fabric(3, Cfg());
  fabric.Send(0, /*src=*/2, /*dst=*/1, Result(9));
  fabric.Tick(100);
  ASSERT_EQ(fabric.responses(1).size(), 1u);
  EXPECT_EQ(fabric.responses(1).front().hdr.cp_index, 9u);
}

TEST(CommFabric, FifoPerDestination) {
  CommFabric fabric(2, Cfg());
  for (uint32_t i = 0; i < 5; ++i) fabric.Send(i, 0, 1, Op(i));
  fabric.Tick(100);
  ASSERT_EQ(fabric.requests(1).size(), 5u);
  for (uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(fabric.requests(1)[i].hdr.cp_index, i);
  }
}

TEST(CommFabric, RingLatencyScalesWithDistance) {
  CommFabric ring(8, Cfg(), Topology::kRing);
  // Neighbours: one hop. Opposite side: four hops. Shortest direction wins.
  EXPECT_EQ(ring.HopLatency(0, 1), 3u);
  EXPECT_EQ(ring.HopLatency(0, 4), 12u);
  EXPECT_EQ(ring.HopLatency(0, 7), 3u);  // wraps backwards
  EXPECT_EQ(ring.HopLatency(6, 2), 12u);

  CommFabric xbar(8, Cfg(), Topology::kCrossbar);
  EXPECT_EQ(xbar.HopLatency(0, 4), 3u);  // distance-independent
}

TEST(CommFabric, IdleReflectsWireState) {
  CommFabric fabric(2, Cfg());
  EXPECT_TRUE(fabric.Idle());
  fabric.Send(0, 0, 1, Op(0));
  EXPECT_FALSE(fabric.Idle());
  // Delivery empties the wire; a delivered-but-undrained inbox is the
  // destination worker's wake concern (PartitionWorker::Idle covers its
  // inboxes), not the fabric's — the fabric itself is quiescent.
  fabric.Tick(50);
  EXPECT_EQ(fabric.requests(1).size(), 1u);
  EXPECT_TRUE(fabric.Idle());
}

TEST(MessagingLatencyModel, ReproducesTable3) {
  MessagingLatencyModel model{Cfg()};
  // On-chip: 24 ns primitive, 48 ns per request/response exchange.
  EXPECT_DOUBLE_EQ(model.OnchipPrimitive(), 24.0);
  EXPECT_DOUBLE_EQ(model.OnchipRoundTrip(), 48.0);
  // Software via shared L3: 20 / 40 ns.
  EXPECT_DOUBLE_EQ(model.L3Primitive(), 20.0);
  EXPECT_DOUBLE_EQ(model.L3RoundTrip(), 40.0);
  // Software via DDR3: 80 / 320 ns (two iterations of read + write).
  EXPECT_DOUBLE_EQ(model.Ddr3Primitive(), 80.0);
  EXPECT_DOUBLE_EQ(model.Ddr3RoundTrip(), 320.0);
}


TEST(CommFabric, MultiNodeCrossingPaysNetworkLatency) {
  CommFabric::ClusterConfig cluster;
  cluster.workers_per_node = 4;
  sim::TimingConfig timing = Cfg();
  timing.interchip_latency_cycles = 250;
  CommFabric fabric(8, timing, Topology::kCrossbar, cluster);
  // Intra-node: plain on-chip hop.
  EXPECT_EQ(fabric.HopLatency(0, 3), 3u);
  EXPECT_EQ(fabric.HopLatency(5, 7), 3u);
  // Node-crossing: network + on-chip at both ends.
  EXPECT_EQ(fabric.HopLatency(0, 4), 250u + 6u);
  EXPECT_EQ(fabric.HopLatency(7, 1), 250u + 6u);
}

TEST(CommFabric, ShortPathMessagesOvertakeLongOnes) {
  CommFabric::ClusterConfig cluster;
  cluster.workers_per_node = 2;
  sim::TimingConfig timing = Cfg();
  timing.interchip_latency_cycles = 100;
  CommFabric fabric(4, timing, Topology::kCrossbar, cluster);
  fabric.Send(0, /*src=*/2, /*dst=*/1, Op(1));  // cross-node, slow
  fabric.Send(0, /*src=*/0, /*dst=*/1, Op(2));  // on-chip, fast
  fabric.Tick(10);
  ASSERT_EQ(fabric.requests(1).size(), 1u);
  EXPECT_EQ(fabric.requests(1).front().hdr.cp_index, 2u);  // fast one first
  fabric.Tick(200);
  EXPECT_EQ(fabric.requests(1).size(), 2u);
}

TEST(CommFabric, RingUnderClusterConfig) {
  // 8 workers on a ring, grouped into two 4-worker nodes. Intra-node pairs
  // pay ring distance; node-crossing pairs pay the network hop plus one
  // on-chip hop at each end — even when they are ring neighbours.
  CommFabric::ClusterConfig cluster;
  cluster.workers_per_node = 4;
  sim::TimingConfig timing = Cfg();
  timing.interchip_latency_cycles = 250;
  CommFabric fabric(8, timing, Topology::kRing, cluster);
  EXPECT_EQ(fabric.HopLatency(0, 1), 3u);    // ring neighbours, same node
  EXPECT_EQ(fabric.HopLatency(0, 3), 9u);    // 3 ring steps, same node
  EXPECT_EQ(fabric.HopLatency(4, 7), 9u);    // second node, same rule
  EXPECT_EQ(fabric.HopLatency(0, 5), 256u);  // node crossing: 250 + 2x3
  EXPECT_EQ(fabric.HopLatency(7, 0), 256u);  // ring-adjacent but cross-node

  fabric.Send(/*now=*/0, /*src=*/0, /*dst=*/5, Op(3));
  fabric.Tick(255);
  EXPECT_TRUE(fabric.requests(5).empty());
  fabric.Tick(256);
  ASSERT_EQ(fabric.requests(5).size(), 1u);
  EXPECT_EQ(fabric.requests(5).front().hdr.cp_index, 3u);
}

/// Scripted per-packet fault decisions, consumed in transmission order.
class ScriptedFaults : public ChannelFaultHook {
 public:
  explicit ScriptedFaults(std::vector<FaultDecision> script)
      : script_(std::move(script)) {}
  FaultDecision OnPacket(uint64_t, MessageClass, db::WorkerId,
                         db::WorkerId) override {
    if (next_ >= script_.size()) return FaultDecision{};
    return script_[next_++];
  }

 private:
  std::vector<FaultDecision> script_;
  size_t next_ = 0;
};

TEST(CommFabric, DroppedPacketIsRetransmitted) {
  CommFabric fabric(2, Cfg());
  fabric.set_reliability({.enabled = true, .retransmit_timeout_cycles = 10});
  ScriptedFaults faults(std::vector<FaultDecision>{{.drop = true}});
  fabric.set_fault_hook(&faults);

  fabric.Send(/*now=*/0, /*src=*/0, /*dst=*/1, Op(5));
  fabric.Tick(5);
  EXPECT_TRUE(fabric.requests(1).empty());
  EXPECT_FALSE(fabric.Idle());  // unacked copy keeps the fabric live
  for (uint64_t c = 6; c <= 14; ++c) fabric.Tick(c);
  ASSERT_EQ(fabric.requests(1).size(), 1u);  // retransmit delivered
  EXPECT_EQ(fabric.requests(1).front().hdr.cp_index, 5u);
  EXPECT_EQ(fabric.retransmits(), 1u);
  // Once the ack returns, the sender forgets the packet: no more copies.
  for (uint64_t c = 15; c <= 40; ++c) fabric.Tick(c);
  EXPECT_EQ(fabric.requests(1).size(), 1u);
  fabric.requests(1).clear();
  EXPECT_TRUE(fabric.Idle());
}

TEST(CommFabric, DuplicateDeliveredOnlyOnce) {
  CommFabric fabric(2, Cfg());
  fabric.set_reliability({.enabled = true, .retransmit_timeout_cycles = 100});
  ScriptedFaults faults(std::vector<FaultDecision>{{.duplicate = true}});
  fabric.set_fault_hook(&faults);

  fabric.Send(/*now=*/0, /*src=*/1, /*dst=*/0, Result(0));
  for (uint64_t c = 1; c <= 10; ++c) fabric.Tick(c);
  EXPECT_EQ(fabric.responses(0).size(), 1u);  // second copy suppressed
  EXPECT_EQ(fabric.counters().Get("duplicates_suppressed"), 1u);
}

TEST(CommFabric, ReliabilityOffDropsSilently) {
  // Without the delivery-guarantee layer a dropped packet is simply gone —
  // the paper-faithful lossless fabric never needs it, and the fault tests
  // rely on this to prove the reliability layer is doing the saving.
  CommFabric fabric(2, Cfg());
  ScriptedFaults faults(std::vector<FaultDecision>{{.drop = true}});
  fabric.set_fault_hook(&faults);
  fabric.Send(0, 0, 1, Op(1));
  for (uint64_t c = 1; c <= 20; ++c) fabric.Tick(c);
  EXPECT_TRUE(fabric.requests(1).empty());
  EXPECT_TRUE(fabric.Idle());
  EXPECT_EQ(fabric.counters().Get("requests_dropped"), 1u);
}

}  // namespace
}  // namespace bionicdb::comm
