// Variable-length key support (paper section 4.4: "Both indexes support
// variable-length key") and catalogue hot-update (section 4.3: procedures
// can be replaced "without FPGA reconfiguration") — claimed features the
// main workloads never exercise.
#include <gtest/gtest.h>

#include <cstring>

#include "core/engine.h"
#include "db/tuple.h"
#include "host/driver.h"
#include "isa/program.h"

namespace bionicdb {
namespace {

using core::BionicDb;
using core::EngineOptions;
using isa::ProgramBuilder;

// A 24-byte string-ish key padded with zeros.
std::vector<uint8_t> MakeKey(const std::string& s) {
  std::vector<uint8_t> key(24, 0);
  std::memcpy(key.data(), s.data(), std::min<size_t>(s.size(), 24));
  return key;
}

db::TableSchema VarlenSchema(db::IndexKind kind) {
  db::TableSchema schema;
  schema.id = 0;
  schema.name = "varlen";
  schema.index = kind;
  schema.key_len = 24;
  schema.payload_len = 8;
  schema.hash_buckets = 1024;
  return schema;
}

isa::Program SearchProgram() {
  ProgramBuilder b;
  b.Logic().Search({.table_id = 0, .cp = 0, .key_offset = 0}).Yield();
  b.Commit().Ret(1, 0).CommitTxn();
  b.Abort().AbortTxn();
  return b.Build().value();
}

isa::Program InsertProgram() {
  ProgramBuilder b;
  b.Logic()
      .Insert({.table_id = 0, .cp = 0, .key_offset = 0, .aux_offset = 24})
      .Yield();
  b.Commit().Ret(1, 0).CommitTxn();
  b.Abort().AbortTxn();
  return b.Build().value();
}

class VarlenKeys : public ::testing::TestWithParam<db::IndexKind> {};

TEST_P(VarlenKeys, SearchAndInsertThroughPipelines) {
  EngineOptions opts;
  opts.n_workers = 1;
  BionicDb engine(opts);
  ASSERT_TRUE(engine.database().CreateTable(VarlenSchema(GetParam())).ok());
  ASSERT_TRUE(engine.RegisterProcedure(1, SearchProgram(), 64).ok());
  ASSERT_TRUE(engine.RegisterProcedure(2, InsertProgram(), 64).ok());

  // Bulk-load keys that only differ beyond the eighth byte: any code path
  // that truncates to 64-bit keys fails this test.
  const std::string kPrefix = "customer-";  // 9 shared bytes
  for (int i = 0; i < 50; ++i) {
    auto key = MakeKey(kPrefix + std::to_string(i));
    uint64_t payload = 1000 + i;
    ASSERT_TRUE(engine.database()
                    .Load(0, 0, key.data(), 24,
                          reinterpret_cast<uint8_t*>(&payload), 8)
                    .ok());
  }

  // Pipeline search for an exact long key.
  auto probe = MakeKey(kPrefix + "17");
  auto hit = engine.AllocateBlock(1);
  hit.WriteBytes(0, probe.data(), probe.size());
  auto near_miss = MakeKey(kPrefix + "170");  // differs at byte 11
  auto miss = engine.AllocateBlock(1);
  miss.WriteBytes(0, near_miss.data(), near_miss.size());
  auto r = host::RunToCompletion(
      &engine, {{0, hit.base()}, {0, miss.base()}}, /*retry_aborts=*/false);
  EXPECT_EQ(r.committed, 1u);
  EXPECT_EQ(hit.state(), db::TxnState::kCommitted);
  EXPECT_EQ(miss.state(), db::TxnState::kAborted);  // NotFound

  // Pipeline insert of a fresh long key, then find it functionally.
  auto fresh = MakeKey("zebra-key-with-a-tail");
  auto ins = engine.AllocateBlock(2);
  ins.WriteBytes(0, fresh.data(), fresh.size());
  ins.WriteU64(24, 4242);
  ASSERT_EQ(host::RunToCompletion(&engine, {{0, ins.base()}}).committed, 1u);
  sim::Addr tuple =
      GetParam() == db::IndexKind::kHash
          ? engine.database().hash_index(0, 0)->Find(fresh.data(), 24)
          : engine.database().skiplist_index(0, 0)->Find(fresh.data(), 24);
  ASSERT_NE(tuple, sim::kNullAddr);
  db::TupleAccessor acc(engine.database().dram(), tuple);
  EXPECT_EQ(acc.key_len(), 24);
  EXPECT_FALSE(acc.dirty());
}

INSTANTIATE_TEST_SUITE_P(BothIndexes, VarlenKeys,
                         ::testing::Values(db::IndexKind::kHash,
                                           db::IndexKind::kSkiplist));

TEST(VarlenSkiplist, LexicographicScanOrder) {
  EngineOptions opts;
  opts.n_workers = 1;
  BionicDb engine(opts);
  ASSERT_TRUE(engine.database()
                  .CreateTable(VarlenSchema(db::IndexKind::kSkiplist))
                  .ok());
  for (const char* name : {"delta", "alpha", "echo", "bravo", "charlie"}) {
    auto key = MakeKey(name);
    ASSERT_TRUE(engine.database().Load(0, 0, key.data(), 24, nullptr, 0).ok());
  }
  std::vector<std::string> order;
  engine.database().skiplist_index(0, 0)->ForEach([&](db::TupleAccessor t) {
    auto key = t.key_bytes();
    order.push_back(std::string(reinterpret_cast<char*>(key.data())));
    return true;
  });
  EXPECT_EQ(order, (std::vector<std::string>{"alpha", "bravo", "charlie",
                                             "delta", "echo"}));
}

TEST(CatalogueHotUpdate, ReplaceProcedureBetweenBatches) {
  // "A client can register a new transaction or change an existing one by
  // uploading the stored procedure code... It does not require FPGA
  // reconfiguration" — replace txn type 1's program mid-run and observe
  // the behaviour change on the same engine.
  EngineOptions opts;
  opts.n_workers = 1;
  BionicDb engine(opts);
  db::TableSchema schema;
  schema.id = 0;
  schema.key_len = 8;
  schema.payload_len = 8;
  ASSERT_TRUE(engine.database().CreateTable(schema).ok());

  auto constant_writer = [](int64_t value) {
    ProgramBuilder b;
    b.Logic().MovI(1, value).Store(1, 0, 0).Yield();
    b.Commit().CommitTxn();
    b.Abort().AbortTxn();
    return b.Build().value();
  };
  ASSERT_TRUE(engine.RegisterProcedure(1, constant_writer(111), 64).ok());
  auto block1 = engine.AllocateBlock(1);
  engine.Submit(0, block1.base());
  engine.Drain();
  EXPECT_EQ(block1.ReadU64(0), 111u);

  // Hot-swap the procedure; no engine restart.
  ASSERT_TRUE(engine.RegisterProcedure(1, constant_writer(222), 64).ok());
  auto block2 = engine.AllocateBlock(1);
  engine.Submit(0, block2.base());
  engine.Drain();
  EXPECT_EQ(block2.ReadU64(0), 222u);
  EXPECT_EQ(engine.TotalCommitted(), 2u);
}

}  // namespace
}  // namespace bionicdb
