#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/random.h"
#include "db/database.h"
#include "db/hash_layout.h"
#include "db/skiplist_layout.h"
#include "db/tuple.h"
#include "db/txn_block.h"
#include "sim/memory.h"

namespace bionicdb::db {
namespace {

sim::TimingConfig Cfg() { return sim::TimingConfig(); }

TEST(Tuple, LayoutRoundTrip) {
  sim::DramMemory dram(Cfg());
  uint8_t key[8];
  EncodeKeyU64(42, key);
  uint8_t payload[16];
  for (int i = 0; i < 16; ++i) payload[i] = uint8_t(i);
  sim::Addr addr = AllocateTuple(&dram, /*height=*/0, key, 8, payload, 16,
                                 /*write_ts=*/7, kFlagDirty);
  TupleAccessor t(&dram, addr);
  EXPECT_EQ(t.write_ts(), 7u);
  EXPECT_EQ(t.read_ts(), 0u);
  EXPECT_TRUE(t.dirty());
  EXPECT_FALSE(t.tombstone());
  EXPECT_EQ(t.height(), 0);
  EXPECT_EQ(t.num_links(), 1u);
  EXPECT_EQ(t.key_len(), 8);
  EXPECT_EQ(t.payload_len(), 16u);
  EXPECT_EQ(t.key_u64(), 42u);
  EXPECT_EQ(t.payload_bytes(), std::vector<uint8_t>(payload, payload + 16));
  EXPECT_EQ(t.next(0), sim::kNullAddr);
  t.ClearFlag(kFlagDirty);
  EXPECT_FALSE(t.dirty());
}

TEST(Tuple, TowerLinksIndependent) {
  sim::DramMemory dram(Cfg());
  uint8_t key[8];
  EncodeKeyU64(1, key);
  sim::Addr addr = AllocateTuple(&dram, /*height=*/4, key, 8, nullptr, 0, 1, 0);
  TupleAccessor t(&dram, addr);
  EXPECT_EQ(t.num_links(), 4u);
  t.set_next(2, 0xabc0);
  EXPECT_EQ(t.next(2), 0xabc0u);
  EXPECT_EQ(t.next(0), sim::kNullAddr);
  EXPECT_EQ(t.next(3), sim::kNullAddr);
}

TEST(Tuple, BigEndianKeyOrderMatchesNumeric) {
  uint8_t a[8], b[8];
  EncodeKeyU64(255, a);
  EncodeKeyU64(256, b);
  EXPECT_LT(memcmp(a, b, 8), 0);
  EXPECT_EQ(DecodeKeyU64(a), 255u);
  EXPECT_EQ(DecodeKeyU64(b), 256u);
}

TEST(HashLayout, InsertFindChain) {
  sim::DramMemory dram(Cfg());
  HashTableLayout table(&dram, 16);  // tiny: force collisions
  Rng rng(1);
  std::map<uint64_t, uint64_t> model;
  for (int i = 0; i < 200; ++i) {
    uint64_t k = rng.Next();
    uint8_t kb[8];
    EncodeKeyU64(k, kb);
    uint64_t payload = k * 3;
    table.Insert(kb, 8, reinterpret_cast<uint8_t*>(&payload), 8, 1);
    model[k] = payload;
  }
  for (const auto& [k, v] : model) {
    uint8_t kb[8];
    EncodeKeyU64(k, kb);
    sim::Addr found = table.Find(kb, 8);
    ASSERT_NE(found, sim::kNullAddr) << k;
    TupleAccessor t(&dram, found);
    uint64_t payload;
    dram.ReadBytes(t.payload_addr(), &payload, 8);
    EXPECT_EQ(payload, v);
  }
  uint8_t missing[8];
  EncodeKeyU64(0xdeadbeefdeadbeefULL, missing);
  EXPECT_EQ(table.Find(missing, 8), sim::kNullAddr);
}

TEST(HashLayout, NewestDuplicateShadowsOlder) {
  sim::DramMemory dram(Cfg());
  HashTableLayout table(&dram, 16);
  uint8_t kb[8];
  EncodeKeyU64(5, kb);
  uint64_t v1 = 100, v2 = 200;
  table.Insert(kb, 8, reinterpret_cast<uint8_t*>(&v1), 8, 1);
  table.Insert(kb, 8, reinterpret_cast<uint8_t*>(&v2), 8, 2);
  TupleAccessor t(&dram, table.Find(kb, 8));
  uint64_t got;
  dram.ReadBytes(t.payload_addr(), &got, 8);
  EXPECT_EQ(got, 200u);  // prepend: newest first
}

TEST(HashLayout, ForEachVisitsAll) {
  sim::DramMemory dram(Cfg());
  HashTableLayout table(&dram, 8);
  for (uint64_t k = 0; k < 50; ++k) {
    uint8_t kb[8];
    EncodeKeyU64(k, kb);
    table.Insert(kb, 8, nullptr, 0, 1);
  }
  int n = 0;
  table.ForEach([&](TupleAccessor) {
    ++n;
    return true;
  });
  EXPECT_EQ(n, 50);
}

TEST(SkiplistLayout, SortedInsertAndFind) {
  sim::DramMemory dram(Cfg());
  SkiplistLayout list(&dram, 99);
  Rng rng(2);
  std::set<uint64_t> keys;
  for (int i = 0; i < 500; ++i) keys.insert(rng.NextUint64(100000));
  for (uint64_t k : keys) {
    uint8_t kb[8];
    EncodeKeyU64(k, kb);
    list.Insert(kb, 8, reinterpret_cast<uint8_t*>(&k), 8, 1);
  }
  EXPECT_TRUE(list.CheckInvariants());
  for (uint64_t k : keys) {
    uint8_t kb[8];
    EncodeKeyU64(k, kb);
    EXPECT_NE(list.Find(kb, 8), sim::kNullAddr) << k;
  }
  uint8_t missing[8];
  EncodeKeyU64(200000, missing);
  EXPECT_EQ(list.Find(missing, 8), sim::kNullAddr);
}

TEST(SkiplistLayout, ScanReturnsSortedRange) {
  sim::DramMemory dram(Cfg());
  SkiplistLayout list(&dram, 7);
  for (uint64_t k = 0; k < 100; ++k) {
    uint8_t kb[8];
    EncodeKeyU64(k * 2, kb);  // even keys
    list.Insert(kb, 8, nullptr, 0, 1);
  }
  uint8_t start[8];
  EncodeKeyU64(31, start);  // between 30 and 32
  std::vector<uint64_t> seen;
  list.Scan(start, 8, 5, [&](TupleAccessor t) {
    seen.push_back(t.key_u64());
    return true;
  });
  EXPECT_EQ(seen, (std::vector<uint64_t>{32, 34, 36, 38, 40}));
}

TEST(SkiplistLayout, LowerBoundSemantics) {
  sim::DramMemory dram(Cfg());
  SkiplistLayout list(&dram, 3);
  for (uint64_t k : {10ull, 20ull, 30ull}) {
    uint8_t kb[8];
    EncodeKeyU64(k, kb);
    list.Insert(kb, 8, nullptr, 0, 1);
  }
  uint8_t probe[8];
  EncodeKeyU64(20, probe);
  EXPECT_EQ(TupleAccessor(&dram, list.LowerBound(probe, 8)).key_u64(), 20u);
  EncodeKeyU64(21, probe);
  EXPECT_EQ(TupleAccessor(&dram, list.LowerBound(probe, 8)).key_u64(), 30u);
  EncodeKeyU64(31, probe);
  EXPECT_EQ(list.LowerBound(probe, 8), sim::kNullAddr);
}

TEST(SkiplistLayout, DeterministicHeightsFromSeed) {
  sim::DramMemory d1(Cfg()), d2(Cfg());
  SkiplistLayout a(&d1, 42), b(&d2, 42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextHeight(), b.NextHeight());
}

TEST(TxnBlock, HeaderAndDataAccess) {
  sim::DramMemory dram(Cfg());
  TxnBlock block = TxnBlock::Allocate(&dram, /*type=*/9, /*data_size=*/64);
  EXPECT_EQ(block.txn_type(), 9u);
  EXPECT_EQ(block.state(), TxnState::kPending);
  block.WriteU64(0, 777);
  EXPECT_EQ(block.ReadU64(0), 777u);
  block.WriteKeyU64(8, 1234);
  EXPECT_EQ(block.ReadKeyU64(8), 1234u);
  block.set_state(TxnState::kCommitted);
  block.set_commit_ts(555);
  EXPECT_EQ(block.state(), TxnState::kCommitted);
  EXPECT_EQ(block.commit_ts(), 555u);
}

TEST(Database, TablesAndPartitions) {
  sim::DramMemory dram(Cfg());
  Database database(&dram, 4);
  TableSchema hash;
  hash.id = 0;
  hash.index = IndexKind::kHash;
  ASSERT_TRUE(database.CreateTable(hash).ok());
  TableSchema skip;
  skip.id = 1;
  skip.index = IndexKind::kSkiplist;
  ASSERT_TRUE(database.CreateTable(skip).ok());

  EXPECT_NE(database.hash_index(0, 0), nullptr);
  EXPECT_EQ(database.skiplist_index(0, 0), nullptr);
  EXPECT_NE(database.skiplist_index(1, 3), nullptr);
  EXPECT_EQ(database.hash_index(1, 3), nullptr);
  EXPECT_EQ(database.hash_index(0, 4), nullptr);  // bad partition

  uint64_t payload = 9;
  ASSERT_TRUE(database.LoadU64(0, 2, 100, &payload, 8).ok());
  EXPECT_NE(database.FindU64(0, 2, 100), sim::kNullAddr);
  EXPECT_EQ(database.FindU64(0, 1, 100), sim::kNullAddr);  // other partition
}

TEST(Database, ReplicatedTableLoadsEverywhere) {
  sim::DramMemory dram(Cfg());
  Database database(&dram, 3);
  TableSchema item;
  item.id = 0;
  item.replicated = true;
  ASSERT_TRUE(database.CreateTable(item).ok());
  uint64_t payload = 1;
  ASSERT_TRUE(database.LoadU64(0, 0, 55, &payload, 8).ok());
  for (uint32_t p = 0; p < 3; ++p) {
    EXPECT_NE(database.FindU64(0, p, 55), sim::kNullAddr) << p;
  }
}

TEST(Database, DenseTableIdsEnforced) {
  sim::DramMemory dram(Cfg());
  Database database(&dram, 1);
  TableSchema t;
  t.id = 5;  // not dense
  EXPECT_FALSE(database.CreateTable(t).ok());
}

}  // namespace
}  // namespace bionicdb::db
