// Distributed-commit atomicity suite (DESIGN.md section 14): every
// cross-chip transaction must commit everywhere or abort everywhere, under
// seeded drop/duplicate/delay faults aimed at the 2PC vote path
// (PrepareAck / CommitReq envelope classes via FaultConfig::comm_class_mask)
// and under coordinator prepare-timeout aborts.
//
// The shadow model judges atomicity on concurrency-control metadata, not
// payload bytes: a committed transaction stamps its commit timestamp into
// write_ts on every tuple it wrote (on both chips) and clears the dirty
// mark; an aborted transaction leaves every write_ts untouched and likewise
// ends with no dirty mark anywhere. Payload bytes are deliberately not the
// oracle for aborts — the in-place stores of the commit handler precede the
// 2PC round, and rolling those bytes back is the host UNDO log's job
// (paper section 4.7), not the hardware's.
//
// Every transaction is built with globally unique keys (one writer per
// tuple), so a stamped write_ts can only have come from that transaction —
// which also makes the committed-path payload check an exactly-once-apply
// check: a duplicated or re-sent CommitReq must not corrupt the value.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "comm/envelope.h"
#include "common/random.h"
#include "common/stats.h"
#include "db/tuple.h"
#include "db/txn_block.h"
#include "fault/fault.h"
#include "host/driver.h"
#include "workload/ycsb.h"

namespace bionicdb {
namespace {

constexpr uint32_t kChips = 2;
constexpr uint32_t kWorkersPerChip = 2;
constexpr uint32_t kRecords = 200;
// Two accesses, both updates: slot 0 targets a foreign chip (every
// transaction needs the 2PC round), slot 1 the submitting worker's own
// partition — one write leg per chip, the minimal atomicity witness.
constexpr uint32_t kAccesses = 2;
constexpr uint64_t kTxnsPerWorker = 12;

enum class Mode { kSerial, kEventDriven, kParallel };

struct TxnShadow {
  sim::Addr block = 0;
  uint64_t key[kAccesses] = {};
  db::PartitionId part[kAccesses] = {};
  uint64_t new_val[kAccesses] = {};
  sim::Addr tuple[kAccesses] = {};
  uint64_t pre_write_ts[kAccesses] = {};
};

struct RunOutput {
  host::RunResult run;
  uint64_t final_now = 0;
  std::string stats_json;
  uint32_t fault_digest = 0;
};

/// Builds a 2-chip cluster, drives one batch of all-multisite update
/// transactions with unique keys (no retries: an abort must stay visible),
/// and shadow-verifies commit-everywhere-or-abort-everywhere per txn.
RunOutput RunBatch(Mode mode, const fault::FaultConfig* fault_cfg,
              uint32_t prepare_timeout_cycles = 0) {
  cluster::ClusterOptions copts;
  copts.n_chips = kChips;
  copts.workers_per_chip = kWorkersPerChip;
  switch (mode) {
    case Mode::kSerial:
      break;
    case Mode::kEventDriven:
      copts.engine.timing.event_driven = true;
      break;
    case Mode::kParallel:
      copts.engine.timing.parallel_hosts = 4;
      break;
  }
  if (prepare_timeout_cycles > 0) {
    copts.engine.softcore.two_pc.prepare_timeout_cycles =
        prepare_timeout_cycles;
  }
  cluster::ClusterDb cluster(copts);
  core::BionicDb& engine = cluster.engine();
  sim::DramMemory& dram = engine.simulator().dram();

  std::unique_ptr<fault::FaultScheduler> sched;
  if (fault_cfg != nullptr) {
    sched = std::make_unique<fault::FaultScheduler>(*fault_cfg);
    sched->Attach(&engine);
  }

  workload::YcsbOptions wopts;
  wopts.mode = workload::YcsbOptions::Mode::kMultisiteUpdate;
  wopts.records_per_partition = kRecords;
  wopts.payload_len = 32;
  wopts.accesses_per_txn = kAccesses;
  wopts.updates_per_txn = kAccesses;
  wopts.multisite_fraction = 1.0;
  wopts.workers_per_chip = kWorkersPerChip;
  workload::Ycsb ycsb(&engine, wopts);
  EXPECT_TRUE(ycsb.Setup().ok());

  // Build the batch, then overwrite every key slot with a per-partition
  // unique key (the chosen partitions — slot 0 foreign chip, slot 1 local —
  // are kept): one writer per tuple makes write_ts stamps unambiguous.
  const uint32_t n_workers = kChips * kWorkersPerChip;
  Rng rng(97);
  std::vector<uint64_t> next_key(n_workers, 0);
  host::TxnList txns;
  std::vector<TxnShadow> shadows;
  for (uint32_t w = 0; w < n_workers; ++w) {
    for (uint64_t i = 0; i < kTxnsPerWorker; ++i) {
      const sim::Addr addr = ycsb.MakeTxn(&rng, w);
      db::TxnBlock block(&dram, addr);
      TxnShadow s;
      s.block = addr;
      for (uint32_t a = 0; a < kAccesses; ++a) {
        const auto part = db::PartitionId(block.ReadU64(int64_t(16 * a + 8)));
        const uint64_t key = uint64_t(part) * kRecords + next_key[part]++;
        block.WriteKeyU64(int64_t(16 * a), key);
        s.part[a] = part;
        s.key[a] = key;
        s.new_val[a] = block.ReadU64(int64_t(16 * kAccesses + 8 * a));
      }
      EXPECT_NE(s.part[0] / kWorkersPerChip, w / kWorkersPerChip);
      EXPECT_EQ(s.part[1], w);
      txns.emplace_back(w, addr);
      shadows.push_back(s);
    }
  }
  for (TxnShadow& s : shadows) {
    for (uint32_t a = 0; a < kAccesses; ++a) {
      s.tuple[a] =
          engine.database().FindU64(workload::Ycsb::kTable, s.part[a], s.key[a]);
      EXPECT_NE(s.tuple[a], sim::kNullAddr);
      s.pre_write_ts[a] = db::TupleAccessor(&dram, s.tuple[a]).write_ts();
    }
  }

  RunOutput out;
  out.run = host::RunToCompletion(&engine, txns, /*retry_aborts=*/false);
  out.final_now = engine.now();
  StatsRegistry reg;
  cluster.CollectStats(&reg);
  out.stats_json = reg.ToJson();
  if (sched != nullptr) {
    EXPECT_GT(sched->events().size(), 0u);
    out.fault_digest = sched->ScheduleDigest();
    sched->Detach();
  }

  // Shadow verification: whatever outcome the block reports must be
  // reflected consistently on BOTH chips' tuples.
  for (const TxnShadow& s : shadows) {
    db::TxnBlock block(&dram, s.block);
    const db::TxnState st = block.state();
    EXPECT_NE(st, db::TxnState::kPending);
    for (uint32_t a = 0; a < kAccesses; ++a) {
      SCOPED_TRACE("key " + std::to_string(s.key[a]) + " partition " +
                   std::to_string(s.part[a]));
      db::TupleAccessor t(&dram, s.tuple[a]);
      EXPECT_FALSE(t.dirty());  // every prepared mark resolved, both ways
      if (st == db::TxnState::kCommitted) {
        EXPECT_EQ(t.write_ts(), block.commit_ts());
        EXPECT_EQ(dram.Read64(t.payload_addr()), s.new_val[a]);
      } else {
        EXPECT_EQ(t.write_ts(), s.pre_write_ts[a]);
      }
    }
  }
  return out;
}

fault::FaultConfig VotePathFaults() {
  fault::FaultConfig cfg;
  cfg.seed = 77;
  cfg.comm_drop_rate = 0.08;
  cfg.comm_dup_rate = 0.08;
  cfg.comm_delay_rate = 0.08;
  cfg.comm_delay_cycles = 400;
  cfg.comm_class_mask = (1u << uint32_t(comm::MessageClass::kPrepareAck)) |
                        (1u << uint32_t(comm::MessageClass::kCommitReq));
  return cfg;
}

TEST(Cluster2Pc, FaultFreeCommitsEverywhere) {
  RunOutput out = RunBatch(Mode::kSerial, nullptr);
  EXPECT_GT(out.run.submitted, 0u);
  EXPECT_EQ(out.run.committed, out.run.submitted);
  EXPECT_EQ(out.run.failed, 0u);
  // The commits really went through the distributed protocol and the
  // inter-chip tier, not some local shortcut.
  EXPECT_NE(out.stats_json.find("twopc_started"), std::string::npos);
  EXPECT_NE(out.stats_json.find("interchip"), std::string::npos);
}

TEST(Cluster2Pc, VotePathFaultsStayAtomic) {
  // Drop/dup/delay restricted to the PrepareAck and CommitReq classes: the
  // reliability layer retransmits and dedups, the participant decision
  // record makes re-applied decisions no-ops, so transactions still resolve
  // — and whichever way each resolves, the shadow model inside Run()
  // demands it resolved the same way on both chips.
  fault::FaultConfig cfg = VotePathFaults();
  RunOutput out = RunBatch(Mode::kSerial, &cfg);
  EXPECT_GT(out.run.committed, 0u);
  EXPECT_EQ(out.run.committed + out.run.failed, out.run.submitted);
}

TEST(Cluster2Pc, CoordinatorTimeoutAbortsEverywhere) {
  // A prepare timeout far below the inter-chip round trip: every
  // coordinator gives up on its vote round and must abort everywhere —
  // including rolling back the dirty marks already prepared on the foreign
  // chip, delivered through the abort-decision CommitReq.
  RunOutput out = RunBatch(Mode::kSerial, nullptr, /*prepare_timeout_cycles=*/64);
  EXPECT_GT(out.run.submitted, 0u);
  EXPECT_EQ(out.run.committed, 0u);
  EXPECT_EQ(out.run.failed, out.run.submitted);
  EXPECT_NE(out.stats_json.find("twopc_prepare_timeouts"), std::string::npos);
}

void ExpectSame(const RunOutput& base, const RunOutput& other,
                const char* name) {
  SCOPED_TRACE(name);
  EXPECT_EQ(base.run.submitted, other.run.submitted);
  EXPECT_EQ(base.run.committed, other.run.committed);
  EXPECT_EQ(base.run.failed, other.run.failed);
  EXPECT_EQ(base.run.retries, other.run.retries);
  EXPECT_EQ(base.run.cycles, other.run.cycles);
  EXPECT_EQ(base.final_now, other.final_now);
  EXPECT_EQ(base.fault_digest, other.fault_digest);
  EXPECT_EQ(base.stats_json, other.stats_json);
}

TEST(Cluster2Pc, ModesAgreeUnderVotePathFaults) {
  // The whole 2PC machinery — fabric-tier queueing, fault injection on the
  // vote classes, retransmission, decision resends — must be byte-identical
  // across the serial, event-driven and parallel-island simulators.
  fault::FaultConfig cfg = VotePathFaults();
  const RunOutput serial = RunBatch(Mode::kSerial, &cfg);
  const RunOutput event = RunBatch(Mode::kEventDriven, &cfg);
  const RunOutput parallel = RunBatch(Mode::kParallel, &cfg);
  ExpectSame(serial, event, "serial vs event_driven");
  ExpectSame(serial, parallel, "serial vs parallel");
}

TEST(Cluster2Pc, ModesAgreeOnTimeoutAborts) {
  const RunOutput serial =
      RunBatch(Mode::kSerial, nullptr, /*prepare_timeout_cycles=*/64);
  const RunOutput event =
      RunBatch(Mode::kEventDriven, nullptr, /*prepare_timeout_cycles=*/64);
  const RunOutput parallel =
      RunBatch(Mode::kParallel, nullptr, /*prepare_timeout_cycles=*/64);
  ExpectSame(serial, event, "serial vs event_driven");
  ExpectSame(serial, parallel, "serial vs parallel");
}

}  // namespace
}  // namespace bionicdb
