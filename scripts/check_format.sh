#!/usr/bin/env bash
# Check-only clang-format lint over an explicit whitelist.
#
# The repo predates .clang-format, so blanket enforcement would reformat
# thousands of lines and poison blame. Instead, files are opted in here as
# they are brought into exact clang-format compliance; CI fails if a
# whitelisted file drifts. Add files to WHITELIST when you touch them and
# they are clean under `clang-format --dry-run`.
#
# Usage: scripts/check_format.sh [clang-format-binary]
set -u

cd "$(dirname "$0")/.."

CLANG_FORMAT="${1:-${CLANG_FORMAT:-clang-format}}"

WHITELIST=(
  src/sim/epoch.h
)

if ! command -v "$CLANG_FORMAT" > /dev/null 2>&1; then
  echo "check_format: '$CLANG_FORMAT' not found (set \$CLANG_FORMAT or pass" \
       "the binary as the first argument)" >&2
  exit 1
fi

echo "check_format: using $("$CLANG_FORMAT" --version)"
status=0
for file in "${WHITELIST[@]}"; do
  if [ ! -f "$file" ]; then
    echo "check_format: whitelisted file missing: $file" >&2
    status=1
    continue
  fi
  if ! "$CLANG_FORMAT" --dry-run --Werror --style=file "$file"; then
    echo "check_format: $file is not clang-format clean" >&2
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "check_format: OK (${#WHITELIST[@]} files)"
fi
exit "$status"
