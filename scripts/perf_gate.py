#!/usr/bin/env python3
"""CI perf ratchet for the simulator-speed bench.

Compares a freshly produced BENCH_sim_speed.json against the checked-in
baseline (BENCH_baseline/sim_speed.json) and fails when any leg's
simulation speed regressed by more than the threshold (default 20%).

Raw cycles-per-second numbers are not comparable across machines, so both
reports carry a `calibration` run: a fixed CPU-bound microloop whose
ops/second gauge measures the host itself. The gate compares *normalized*
speed — sim_cycles_per_second divided by the same report's calibration
ops/second — which cancels the host-speed factor and leaves the simulator's
work-per-cycle, the quantity the ratchet is meant to protect.

Multiple current reports may be passed; the gate takes the best normalized
speed per (leg, mode) across them, so a noisy CI run can retry the bench
and pass max-of-N to absorb scheduling jitter.

Exit codes: 0 = pass, 1 = regression (or schema problem), 2 = usage error.
On improvement past the ratchet margin the gate still passes but prints a
suggestion to refresh the baseline, keeping the ratchet tight.

--self-test re-runs the comparison with every current speed scaled by 0.75
(a synthetic 25% slowdown) and asserts the gate *trips*; CI runs it next to
the real gate so a silently-toothless gate is itself a failure.

Stdlib only; no third-party imports.
"""

import argparse
import json
import sys

THRESHOLD_DEFAULT = 0.80   # fail below this current/baseline normalized ratio
RATCHET_DEFAULT = 1.25     # suggest a baseline refresh above this


def load_report(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        sys.exit(f"perf_gate: cannot read {path}: {e}")


def runs_by_label(report, path):
    runs = report.get("runs")
    if not isinstance(runs, list):
        sys.exit(f"perf_gate: {path}: no 'runs' array")
    return {r.get("label", ""): r.get("stats", {}) for r in runs}


def calibration_ops(runs, path):
    calib = runs.get("calibration", {})
    ops = calib.get("host_ops_per_second")
    if not isinstance(ops, (int, float)) or ops <= 0:
        print(f"perf_gate: {path}: missing calibration/host_ops_per_second "
              "(report predates the calibration microloop?)", file=sys.stderr)
        sys.exit(1)
    return float(ops)


def normalized_speeds(runs, path):
    """{(leg, mode): sim_cycles_per_second / calibration_ops} for every
    speed/<leg> run mode that reports a positive speed."""
    calib = calibration_ops(runs, path)
    out = {}
    for label, stats in runs.items():
        if not label.startswith("speed/"):
            continue
        leg = label[len("speed/"):]
        for mode in ("cycle_accurate", "event_driven"):
            tree = stats.get(mode)
            if not isinstance(tree, dict):
                continue
            cps = tree.get("sim_cycles_per_second")
            if isinstance(cps, (int, float)) and cps > 0:
                out[(leg, mode)] = float(cps) / calib
    if not out:
        print(f"perf_gate: {path}: no speed/* runs with "
              "sim_cycles_per_second gauges", file=sys.stderr)
        sys.exit(1)
    return out


def evaluate(baseline, currents, threshold, ratchet, require=()):
    """Returns (failures, rows); rows = (key, base, cur, ratio)."""
    # Best normalized speed per key across the provided current reports.
    best = {}
    for cur in currents:
        for key, v in cur.items():
            if key not in best or v > best[key]:
                best[key] = v

    failures = []
    # --require legs must be present in the current reports regardless of
    # whether the baseline knows them; this keeps a bench refactor from
    # silently dropping a leg the nightly is supposed to watch. "leg"
    # matches any mode; "leg/mode" matches exactly one.
    for req in require:
        if "/" in req:
            leg, mode = req.rsplit("/", 1)
            hit = (leg, mode) in best
        else:
            hit = any(k[0] == req for k in best)
        if not hit:
            failures.append(f"{req}: required leg missing from the current "
                            "report(s) (--require)")
    rows = []
    for key in sorted(baseline):
        base = baseline[key]
        if key not in best:
            failures.append(f"{key[0]}/{key[1]}: present in baseline but "
                            "missing from the current report")
            continue
        ratio = best[key] / base
        rows.append((key, base, best[key], ratio))
        if ratio < threshold:
            failures.append(
                f"{key[0]}/{key[1]}: normalized speed ratio {ratio:.3f} "
                f"< {threshold:.2f} "
                f"({(1 - ratio) * 100:.1f}% regression vs baseline)")
    return failures, rows


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("current", nargs="+",
                    help="freshly produced BENCH_sim_speed.json (one or "
                         "more; best-of-N per leg is gated)")
    ap.add_argument("--baseline", required=True,
                    help="checked-in BENCH_baseline/sim_speed.json")
    ap.add_argument("--threshold", type=float, default=THRESHOLD_DEFAULT,
                    help="minimum current/baseline normalized ratio "
                         f"(default {THRESHOLD_DEFAULT})")
    ap.add_argument("--ratchet", type=float, default=RATCHET_DEFAULT,
                    help="suggest a baseline refresh when every ratio "
                         f"exceeds this (default {RATCHET_DEFAULT})")
    ap.add_argument("--require", action="append", default=[],
                    metavar="LEG[/MODE]",
                    help="fail unless this leg (optionally narrowed to one "
                         "simulation mode) appears in the current reports; "
                         "repeatable")
    ap.add_argument("--self-test", action="store_true",
                    help="scale current speeds by 0.75 and assert the gate "
                         "trips (exit 0 iff the synthetic regression fails)")
    args = ap.parse_args()
    if not 0 < args.threshold < 1:
        ap.error("--threshold must be in (0, 1)")

    base_runs = runs_by_label(load_report(args.baseline), args.baseline)
    baseline = normalized_speeds(base_runs, args.baseline)
    currents = []
    for path in args.current:
        currents.append(
            normalized_speeds(runs_by_label(load_report(path), path), path))

    if args.self_test:
        slowed = [{k: v * 0.75 for k, v in cur.items()} for cur in currents]
        failures, _ = evaluate(baseline, slowed, args.threshold, args.ratchet,
                               args.require)
        if failures:
            print("perf_gate --self-test: OK — synthetic 25% slowdown trips "
                  f"the gate ({len(failures)} leg(s) flagged)")
            return 0
        print("perf_gate --self-test: FAILED — a 25% slowdown passed the "
              "gate; the ratchet has no teeth", file=sys.stderr)
        return 1

    failures, rows = evaluate(baseline, currents, args.threshold, args.ratchet,
                              args.require)

    print(f"{'leg/mode':<34} {'baseline':>10} {'current':>10} {'ratio':>7}")
    for (leg, mode), base, cur, ratio in rows:
        print(f"{leg + '/' + mode:<34} {base:10.4g} {cur:10.4g} {ratio:7.3f}")
    print("(speeds shown normalized: sim_cycles_per_second / "
          "calibration host_ops_per_second)")

    if failures:
        print("\nperf_gate: FAIL", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        print("  If this slowdown is intended and justified, refresh "
              "BENCH_baseline/sim_speed.json from this run.", file=sys.stderr)
        return 1

    if rows and all(r[3] > args.ratchet for r in rows):
        print(f"\nperf_gate: PASS — every leg is >{args.ratchet:.2f}x the "
              "baseline; consider tightening the ratchet by refreshing "
              "BENCH_baseline/sim_speed.json from this run.")
    else:
        print("\nperf_gate: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
