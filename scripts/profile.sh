#!/usr/bin/env bash
# Profile the simulator hot path with gprof (DESIGN.md section 15.4).
#
# Builds the `profile` preset (RelWithDebInfo, frame pointers, -pg),
# runs a bench binary — bench/sim_speed by default, since its dense leg
# is the cycle-accurate stress case the perf work targets — and prints
# the flat profile plus the top of the call graph. gprof is used because
# it needs no kernel perf-event access, so the same workflow runs in
# containers and CI; pass any extra arguments through to the bench
# (e.g. --smoke for a quick look).
#
#   scripts/profile.sh                 # full sim_speed under gprof
#   scripts/profile.sh --smoke         # reduced legs
#   BENCH=sim_sweep scripts/profile.sh # profile a different bench
set -euo pipefail

cd "$(dirname "$0")/.."
BENCH="${BENCH:-sim_speed}"
BUILD=build-profile

cmake --preset profile >/dev/null
cmake --build "$BUILD" -j "$(nproc)" --target "$BENCH" >/dev/null

# -pg writes gmon.out into the working directory of the profiled process.
cd "$BUILD/bench"
"./$BENCH" "$@"
if [[ ! -f gmon.out ]]; then
  echo "profile.sh: no gmon.out produced — was the profile preset built with -pg?" >&2
  exit 1
fi

echo
echo "=== gprof flat profile (top 30) ==="
gprof -b -p "./$BENCH" gmon.out | head -40
echo
echo "=== gprof call graph (top entries) ==="
gprof -b -q "./$BENCH" gmon.out | head -60
