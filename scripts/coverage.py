#!/usr/bin/env python3
"""Line-coverage floor for selected source directories.

Walks a --coverage (gcov-instrumented) build tree for .gcda files, asks
gcov for JSON intermediate records, merges execution counts per source
line across every translation unit that inlined the line, and compares
aggregate line coverage for each watched source prefix against a
checked-in floor (scripts/coverage_floor.txt).

The floor file is `<prefix> <percent>` per line, e.g.

    src/cc 85.0

and the gate fails (exit 1) when any watched prefix's coverage drops
below its floor. Raising the floor after coverage improves is the
ratchet; CI never auto-lowers it.

Merging matters: header-defined code (cc_unit.h templates, inline
helpers) is instrumented separately in every including TU, so a line is
counted as executed when *any* TU executed it — the same union gcovr/lcov
compute.

Stdlib + the gcov binary only; no third-party imports.

Exit codes: 0 = pass, 1 = below floor (or no coverage data), 2 = usage.
"""

import argparse
import json
import os
import subprocess
import sys


def find_gcda(build_dir):
    out = []
    for root, _dirs, files in os.walk(build_dir):
        for f in files:
            if f.endswith(".gcda"):
                out.append(os.path.join(root, f))
    return out


def gcov_json(gcda, gcov_bin):
    """Parse `gcov --stdout --json-format` records for one .gcda file."""
    try:
        proc = subprocess.run(
            [gcov_bin, "--stdout", "--json-format", gcda],
            capture_output=True, text=True, check=False)
    except OSError as e:
        sys.exit(f"coverage: cannot run {gcov_bin}: {e}")
    records = []
    for line in proc.stdout.splitlines():
        line = line.strip()
        if not line.startswith("{"):
            continue
        try:
            records.append(json.loads(line))
        except ValueError:
            pass  # non-JSON noise from older gcov; ignore
    return records


def normalize(path, repo_root):
    """Repo-relative path with forward slashes, or None if outside."""
    p = os.path.normpath(os.path.join(repo_root, path)
                         if not os.path.isabs(path) else path)
    try:
        rel = os.path.relpath(p, repo_root)
    except ValueError:
        return None
    if rel.startswith(".."):
        return None
    return rel.replace(os.sep, "/")


def collect(build_dir, repo_root, prefixes, gcov_bin):
    """{source_file: {line_number: max_count_over_TUs}} for watched files."""
    hits = {}
    gcdas = find_gcda(build_dir)
    if not gcdas:
        sys.exit(f"coverage: no .gcda files under {build_dir} — was the "
                 "build configured with --coverage and were the tests run?")
    for gcda in gcdas:
        for rec in gcov_json(gcda, gcov_bin):
            for f in rec.get("files", []):
                rel = normalize(f.get("file", ""), repo_root)
                if rel is None:
                    continue
                if not any(rel == p or rel.startswith(p + "/")
                           for p in prefixes):
                    continue
                lines = hits.setdefault(rel, {})
                for ln in f.get("lines", []):
                    n = ln.get("line_number")
                    c = ln.get("count", 0)
                    if isinstance(n, int):
                        lines[n] = max(lines.get(n, 0), int(c))
    return hits


def read_floors(path):
    floors = {}
    try:
        with open(path, "r", encoding="utf-8") as f:
            for raw in f:
                line = raw.split("#", 1)[0].strip()
                if not line:
                    continue
                parts = line.split()
                if len(parts) != 2:
                    sys.exit(f"coverage: {path}: bad line {raw!r} "
                             "(want '<prefix> <percent>')")
                floors[parts[0].rstrip("/")] = float(parts[1])
    except OSError as e:
        sys.exit(f"coverage: cannot read floor file {path}: {e}")
    if not floors:
        sys.exit(f"coverage: {path}: no floors defined")
    return floors


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build", required=True,
                    help="coverage-instrumented build directory")
    ap.add_argument("--floor-file", default=None,
                    help="floor spec (default scripts/coverage_floor.txt "
                         "next to this script)")
    ap.add_argument("--repo-root", default=None,
                    help="repository root (default: parent of scripts/)")
    ap.add_argument("--gcov", default=os.environ.get("GCOV", "gcov"),
                    help="gcov binary (default $GCOV or 'gcov'; point at "
                         "the one matching the compiler that built --build)")
    args = ap.parse_args()

    here = os.path.dirname(os.path.abspath(__file__))
    repo_root = os.path.abspath(args.repo_root or os.path.dirname(here))
    floor_file = args.floor_file or os.path.join(here, "coverage_floor.txt")
    floors = read_floors(floor_file)

    hits = collect(args.build, repo_root, sorted(floors), args.gcov)

    failures = []
    print(f"{'prefix':<12} {'lines':>7} {'hit':>7} {'cov%':>7} {'floor':>7}")
    for prefix, floor in sorted(floors.items()):
        files = {f: ln for f, ln in hits.items()
                 if f == prefix or f.startswith(prefix + "/")}
        total = sum(len(ln) for ln in files.values())
        hit = sum(1 for ln in files.values() for c in ln.values() if c > 0)
        if total == 0:
            failures.append(f"{prefix}: no instrumented lines found (source "
                            "not built into the coverage tree?)")
            print(f"{prefix:<12} {0:>7} {0:>7} {'--':>7} {floor:>6.1f}%")
            continue
        pct = 100.0 * hit / total
        print(f"{prefix:<12} {total:>7} {hit:>7} {pct:>6.1f}% {floor:>6.1f}%")
        for f in sorted(files):
            ftot = len(files[f])
            fhit = sum(1 for c in files[f].values() if c > 0)
            print(f"  {f:<40} {fhit}/{ftot} "
                  f"({100.0 * fhit / max(ftot, 1):.1f}%)")
        if pct < floor:
            failures.append(f"{prefix}: line coverage {pct:.1f}% is below "
                            f"the floor {floor:.1f}%")

    if failures:
        print("\ncoverage: FAIL", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        print("  Add or extend tests; never lower the floor to pass.",
              file=sys.stderr)
        return 1
    print("\ncoverage: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
