#!/usr/bin/env python3
"""Fleet sweep runner: drives the sim_sweep bench and digests its report.

sim_sweep fans a configuration grid (workers x DRAM latency x simulation
mode) out over host cores through host::RunSweep and merges every point
into one BENCH_sim_sweep.json. This wrapper runs the binary, then reads
the merged report back and prints a per-point digest plus fleet totals —
the ad-hoc entry point for "how fast is the simulator across the grid
right now" without hand-assembling bench invocations.

    scripts/sweep.py --build build-release            # full grid
    scripts/sweep.py --build build --smoke            # reduced grid
    scripts/sweep.py --report path/to/BENCH_sim_sweep.json   # digest only

Stdlib only; no third-party imports.
"""

import argparse
import json
import os
import subprocess
import sys


def digest(report_path):
    try:
        with open(report_path, "r", encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, ValueError) as e:
        sys.exit(f"sweep: cannot read {report_path}: {e}")
    runs = [r for r in report.get("runs", [])
            if r.get("label", "").startswith("sweep/")]
    if not runs:
        sys.exit(f"sweep: {report_path} has no sweep/* runs")

    header = f"{'point':<28} {'cycles':>12} {'committed':>10} " \
             f"{'wall_s':>8} {'Mcyc/s':>8}"
    print(header)
    print("-" * len(header))
    total_cycles = 0
    total_committed = 0
    total_wall = 0.0
    for r in sorted(runs, key=lambda r: r["label"]):
        s = r.get("stats", {})
        run = s.get("run", {})
        cycles = run.get("cycles", 0)
        committed = run.get("committed", 0)
        wall = run.get("wall_seconds", 0.0)
        cps = run.get("sim_cycles_per_second", 0.0)
        total_cycles += cycles
        total_committed += committed
        total_wall += wall
        print(f"{r['label'][len('sweep/'):]:<28} {cycles:>12} "
              f"{committed:>10} {wall:>8.3f} {cps / 1e6:>8.2f}")
    print("-" * len(header))
    print(f"{len(runs)} points; {total_cycles} simulated cycles, "
          f"{total_committed} committed txns, {total_wall:.2f}s of "
          "single-point wall clock", end="")
    if total_wall > 0:
        print(f" ({total_cycles / total_wall / 1e6:.2f} Mcycles/s "
              "aggregate simulation rate)")
    else:
        print()


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build", default="build-release",
                    help="build directory containing bench/sim_sweep "
                         "(default build-release)")
    ap.add_argument("--report",
                    help="digest an existing BENCH_sim_sweep.json instead "
                         "of running the bench")
    ap.add_argument("--smoke", action="store_true",
                    help="pass --smoke to sim_sweep (reduced grid)")
    ap.add_argument("--quick", action="store_true",
                    help="pass --quick to sim_sweep (reduced txn counts)")
    args = ap.parse_args()

    if args.report:
        digest(args.report)
        return 0

    bench_dir = os.path.join(args.build, "bench")
    binary = os.path.join(bench_dir, "sim_sweep")
    if not os.path.exists(binary):
        sys.exit(f"sweep: {binary} not found — build it first "
                 f"(cmake --build {args.build} --target sim_sweep)")
    cmd = [os.path.abspath(binary)]
    if args.smoke:
        cmd.append("--smoke")
    if args.quick:
        cmd.append("--quick")
    # The bench writes BENCH_sim_sweep.json into its working directory.
    rc = subprocess.call(cmd, cwd=bench_dir)
    if rc != 0:
        sys.exit(f"sweep: sim_sweep exited with {rc}")
    print()
    digest(os.path.join(bench_dir, "BENCH_sim_sweep.json"))
    return 0


if __name__ == "__main__":
    sys.exit(main())
